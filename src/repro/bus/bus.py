"""The single broadcast bus (Section A.2).

At most one transaction occupies the bus at a time.  A grant is atomic:
the winning requester's transaction is broadcast, every other port snoops
and changes state immediately, memory is consulted, and the requester
completes -- all at the grant cycle.  The transaction then *occupies* the
bus for a duration derived from :class:`~repro.common.config.TimingConfig`,
and the requesting processor resumes when the bus frees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.bus.arbiter import Arbiter
from repro.bus.signals import BusResponse, SnoopReply
from repro.bus.transaction import BusOp, BusTransaction
from repro.common.config import TimingConfig
from repro.common.types import NEVER, CacheId, Stamp
from repro.protocols.base import Outcome
from repro.protocols.features import ReadSourcePolicy
from repro.sim.events import EventKind

from repro.obs.core import NULL_OBS

if TYPE_CHECKING:
    from repro.memory.main_memory import MainMemory
    from repro.obs.core import Observability
    from repro.sim.clock import Clock
    from repro.sim.events import TraceLog
    from repro.sim.stats import SimStats


class BusPort(Protocol):
    """What the bus requires of anything attached to it (caches, I/O)."""

    id: CacheId

    def has_bus_request(self) -> bool: ...

    def has_request_hint(self) -> bool: ...

    def bus_request_priority(self) -> bool: ...

    def take_bus_transaction(self) -> BusTransaction: ...

    def on_txn_granted(self, txn: BusTransaction, response: BusResponse,
                       data: list[Stamp] | None): ...

    def snoop(self, txn: BusTransaction) -> SnoopReply: ...

    def finish_bus_release(self) -> None: ...


class Bus:
    """Single bus with snoop broadcast and a busy-cycle occupancy model."""

    def __init__(
        self,
        memory: "MainMemory",
        timing: TimingConfig,
        clock: "Clock",
        stats: "SimStats",
        trace: "TraceLog",
        obs: "Observability" = NULL_OBS,
        index: int = 0,
    ) -> None:
        self.memory = memory
        self.timing = timing
        self.clock = clock
        self.stats = stats
        self.trace = trace
        self.obs = obs
        #: Optional :class:`~repro.sim.schedule.Scheduler` resolving
        #: arbitration and read-source ties; ``None`` keeps the built-in
        #: deterministic tie-breaks (round-robin, lowest id).
        self.scheduler = None
        #: Position in a multi-bus system (labels this bus's metrics).
        self.index = index
        self._ports: dict[CacheId, BusPort] = {}
        #: Snapshot of the port list for allocation-free scans.
        self._port_list: tuple[BusPort, ...] = ()
        self._arbiter: Arbiter | None = None
        self._busy_until = 0
        self._active_port: BusPort | None = None
        #: Retries forced by cache-hold RMW snOop refusals.
        self.retries = 0

    # -- wiring -------------------------------------------------------------

    def attach(self, port: BusPort) -> None:
        if port.id in self._ports:
            raise ValueError(f"port {port.id} already attached")
        self._ports[port.id] = port
        self._port_list = tuple(self._ports.values())
        self._arbiter = Arbiter(list(self._ports))

    def port(self, cache_id: CacheId) -> BusPort:
        return self._ports[cache_id]

    @property
    def busy(self) -> bool:
        return self.clock.cycle < self._busy_until

    @property
    def pending_release(self) -> bool:
        """An expired occupancy whose requester has not been released yet."""
        return not self.busy and self._active_port is not None

    def next_event_cycle(self) -> int:
        """Earliest cycle at which :meth:`step` does anything.

        While occupied the bus is inert until ``_busy_until`` (the release
        and the following arbitration happen on that cycle).  When free it
        acts immediately if a release is owed or any port has a grantable
        request; otherwise it stays idle until a processor posts one --
        which requires a processor event, so the caller takes the minimum
        with the processors' own next events.
        """
        now = self.clock.cycle
        if now < self._busy_until:
            return self._busy_until
        if self._active_port is not None:
            return now
        # The hint may be optimistic (a request revalidation would
        # clear), which only costs a stepped cycle in which arbitration
        # finds nothing -- exactly what the stepped engine would do.
        for port in self._port_list:
            if port.has_request_hint():
                return now
        return NEVER

    # -- per-cycle driver ------------------------------------------------------

    def step(self) -> bool:
        """Advance one cycle; returns True if the bus did anything."""
        if self.busy:
            return True
        if self._active_port is not None:
            # The occupancy just expired: release the requester.
            self._active_port.finish_bus_release()
            self._active_port = None
        winner = self._arbitrate()
        if winner is None:
            return False
        port = self._ports[winner]
        txn = port.take_bus_transaction()
        self._execute(port, txn)
        return True

    def _arbitrate(self) -> CacheId | None:
        assert self._arbiter is not None
        # Hint-gated scan: a port without even a hinted request cannot
        # have a grantable one, and revalidation (inside the real
        # ``has_bus_request``) only ever runs when a request is posted --
        # the same cycles it ran on before the gate.
        first: BusPort | None = None
        requests: dict[CacheId, _PriorityProbe] | None = None
        for port in self._port_list:
            if port.has_request_hint() and port.has_bus_request():
                if first is None:
                    first = port
                elif requests is None:
                    requests = {
                        first.id: _PriorityProbe(first.bus_request_priority()),
                        port.id: _PriorityProbe(port.bus_request_priority()),
                    }
                else:
                    requests[port.id] = _PriorityProbe(
                        port.bus_request_priority())
        if first is None:
            return None
        if requests is None:
            # Sole requester: it wins whatever its priority class, and
            # commit advances the round-robin pointer exactly as the
            # general path would.
            return self._arbiter.commit(first.id)
        candidates = self._arbiter.ordered_candidates(requests)  # type: ignore[arg-type]
        index = 0
        if self.scheduler is not None and len(candidates) > 1:
            from repro.sim.schedule import ChoiceKind

            # A multi-way arbitration among high-priority requests is the
            # post-unlock waiter wakeup of Section E.4 -- its own named
            # choice point, since lock fairness lives there.
            kind = (ChoiceKind.WAITER_WAKE
                    if requests[candidates[0]].high_priority
                    else ChoiceKind.BUS_ARB)
            index = self.scheduler.choose(kind, candidates,
                                          cycle=self.clock.cycle)
        return self._arbiter.commit(candidates[index])

    # -- transaction execution --------------------------------------------------

    def _execute(self, port: BusPort, txn: BusTransaction) -> None:
        now = self.clock.cycle
        if self.trace.active:
            self.trace.emit(now, EventKind.BUS_TXN, txn=str(txn))
        if self.obs.active:
            # Open the transaction span before snooping so the snoop-time
            # hooks (invalidations, wakeups, aborts) attach to it as the
            # cause of whatever they force elsewhere.
            self.obs.record_txn_begin(now, txn.op.name, txn.block,
                                      txn.requester, bus=self.index)

        replies = self._snoop_all(port, txn)
        response = BusResponse.combine(replies, choose=self._choose_source)

        self._absorb_flushes(txn, replies)
        data = self._resolve_data(port, txn, response, replies)
        self._memory_side_effects(txn, response)

        info = port.on_txn_granted(txn, response, data)
        if info.outcome is Outcome.REBUS and response.retry:
            self.retries += 1

        duration = self._duration(txn, response, replies, info)
        self.stats.record_txn(txn.op.name, duration)
        self._count_events(txn, response)
        if self.obs.active:
            self.obs.record_bus_txn(now, duration, txn.op.name, txn.block,
                                    txn.requester, bus=self.index,
                                    outcome=info.outcome.name)
        self._busy_until = now + duration
        self._active_port = port

    def _choose_source(self, candidates: list[CacheId]) -> CacheId:
        """Resolve a multi-candidate read-source arbitration (Illinois,
        Feature 8 ``ARB``); the default tie-break is the lowest id."""
        if self.scheduler is None or len(candidates) < 2:
            return candidates[0]
        from repro.sim.schedule import ChoiceKind

        index = self.scheduler.choose(ChoiceKind.READ_SOURCE, candidates,
                                      cycle=self.clock.cycle)
        return candidates[index]

    def _snoop_all(
        self, requester: BusPort, txn: BusTransaction
    ) -> dict[CacheId, SnoopReply]:
        replies: dict[CacheId, SnoopReply] = {}
        for cid, port in self._ports.items():
            if cid == requester.id:
                continue
            replies[cid] = port.snoop(txn)
        return replies

    def _absorb_flushes(
        self, txn: BusTransaction, replies: dict[CacheId, SnoopReply]
    ) -> None:
        for reply in replies.values():
            if reply.flush_words is not None:
                self.memory.write_block(txn.block, reply.flush_words)
                self.stats.flushes += 1

    def _resolve_data(
        self,
        port: BusPort,
        txn: BusTransaction,
        response: BusResponse,
        replies: dict[CacheId, SnoopReply],
    ) -> list[Stamp] | None:
        if not (txn.op.fetches_block or txn.op is BusOp.IO_OUTPUT_READ):
            return None
        if response.locked:
            return None

        # Purged-lock tags in memory (Section E.3 minor modification).
        tag = self.memory.lock_tag(txn.block)
        if tag is not None:
            if tag.owner == txn.requester:
                cleared = self.memory.clear_lock_tag(txn.block)
                assert cleared is not None
                response.memory_lock_owner = True
                response.memory_lock_waiter = cleared.waiter
            else:
                response.memory_locked = True
                self.memory.mark_lock_waiter(txn.block)
                return None

        if response.supplier is not None:
            reply = replies[response.supplier]
            assert reply.data is not None
            self.stats.cache_to_cache_transfers += 1
            if self.obs.active:
                self.obs.record_c2c(txn.block, response.supplier)
            if response.arbitration_candidates:
                self.stats.source_arbitrations += 1
            if self.trace.active:
                self.trace.emit(self.clock.cycle, EventKind.SUPPLY,
                                block=txn.block, by=f"cache{response.supplier}",
                                dirty=response.supplier_dirty)
            return list(reply.data)

        data = self.memory.read_block(txn.block)
        self.stats.memory_fetches += 1
        if response.shared_hit and self._tracks_source_loss(port):
            self.stats.source_losses += 1
            if self.obs.active:
                self.obs.record_source_loss(txn.block)
        if self.trace.active:
            self.trace.emit(self.clock.cycle, EventKind.SUPPLY,
                            block=txn.block, by="memory", dirty=False)
        return data

    def _tracks_source_loss(self, port: BusPort) -> bool:
        protocol = getattr(port, "protocol", None)
        if protocol is None:
            return False
        policy = protocol.features().read_source_policy
        return policy in (ReadSourcePolicy.MEMORY, ReadSourcePolicy.LRU)

    def _memory_side_effects(self, txn: BusTransaction, response: BusResponse) -> None:
        # Word writes to memory are applied by the requesting protocol in
        # after_txn (a write whose copy was invalidated while queued must
        # not blindly reach memory -- it retries as a miss instead).
        return None

    # -- timing -----------------------------------------------------------------

    def _duration(
        self,
        txn: BusTransaction,
        response: BusResponse,
        replies: dict[CacheId, SnoopReply],
        info,
    ) -> int:
        t = self.timing
        wpb = self.memory.words_per_block
        base = self._base_duration(txn, response, replies, t, wpb)
        if info.victim_flush_words:
            base += (
                t.bus_address_cycles
                + t.memory_latency
                + info.victim_flush_words * t.word_transfer_cycles
            )
        if info.lock_spilled:
            base += t.invalidate_cycles
        base += txn.extra_hold_cycles
        return max(1, base)

    def _base_duration(self, txn, response, replies, t: TimingConfig, wpb: int) -> int:
        op = txn.op
        if response.retry:
            return t.invalidate_cycles
        if op in (
            BusOp.UPGRADE,
            BusOp.WRITE_NO_FETCH,
            BusOp.MEMORY_LOCK_WRITE,
            BusOp.UNLOCK_BROADCAST,
            BusOp.IO_INPUT,
        ):
            return t.invalidate_cycles
        if op in (BusOp.WRITE_WORD, BusOp.UPDATE_WORD):
            cycles = t.word_write_cycles()
            if any(r.flush_words is not None for r in replies.values()):
                cycles += t.flush_cycles(wpb)
            return cycles
        if op is BusOp.MEMORY_RMW:
            return (
                t.bus_address_cycles
                + t.memory_latency
                + 2 * t.word_transfer_cycles
            )
        if op is BusOp.FLUSH_BLOCK:
            return t.flush_cycles(wpb)
        if op.fetches_block or op is BusOp.IO_OUTPUT_READ:
            if response.locked or response.memory_locked:
                # The refused request consumed only its address cycle.
                return t.invalidate_cycles
            if response.supplier is not None:
                reply = replies[response.supplier]
                words = reply.supply_words_moved or wpb
                cycles = (
                    t.bus_address_cycles
                    + t.cache_supply_latency
                    + words * t.word_transfer_cycles
                    + t.status_transfer_cycles
                )
                if response.arbitration_candidates:
                    cycles += t.source_arbitration_cycles
                if reply.flush_words is not None and not t.flush_concurrent:
                    cycles += t.flush_cycles(wpb)
                return cycles
            words = txn.words_moved or wpb
            cycles = t.bus_address_cycles + t.memory_latency
            cycles += words * t.word_transfer_cycles
            # A snooper that had to flush before memory could serve the
            # request (Synapse's read of a dirty-elsewhere block) costs a
            # full memory write first.
            if any(r.flush_words is not None for r in replies.values()):
                cycles += t.flush_cycles(wpb)
            return cycles
        raise ValueError(f"no duration rule for {op}")

    def _count_events(self, txn: BusTransaction, response: BusResponse) -> None:
        if txn.op is BusOp.UNLOCK_BROADCAST:
            self.stats.unlock_broadcasts += 1
            if not response.shared_hit:
                self.stats.spurious_unlock_broadcasts += 1
            if self.obs.active:
                self.obs.record_unlock_broadcast(
                    txn.block, spurious=not response.shared_hit)


class _PriorityProbe:
    """Minimal arbiter-request adapter (only priority is consulted)."""

    __slots__ = ("high_priority",)

    def __init__(self, high_priority: bool) -> None:
        self.high_priority = high_priority
