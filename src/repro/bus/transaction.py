"""Bus transaction vocabulary.

Each transaction is one setting of the processor-memory switch (Section
A.2): the requester broadcasts, every other cache snoops and may respond,
and memory observes.  State changes happen atomically at grant time; the
transaction then occupies the bus for a duration computed from
:class:`~repro.common.config.TimingConfig`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.common.types import BlockAddr, CacheId, WordAddr


class BusOp(enum.Enum):
    """The bus request codes used across all ten protocols."""

    #: Fetch a block for read (shared-access) privilege.
    READ_BLOCK = "read"
    #: Fetch a block for write (sole-access) privilege; invalidates others.
    READ_EXCL = "read-excl"
    #: Fetch a block for write privilege *and* lock it (the proposal's lock
    #: instruction, Section E.3).
    READ_LOCK = "read-lock"
    #: Gain write privilege for a block already held valid -- the one-cycle
    #: pseudo-write of Feature 4 (Figure 5).
    UPGRADE = "upgrade"
    #: Write one word through to memory, invalidating other copies (classic
    #: scheme, and Goodman's first-write write-through).
    WRITE_WORD = "write-word"
    #: Broadcast-update one word in other caches (Dragon/Firefly/
    #: Rudolph-Segall; also the write-through busy-wait option of E.4).
    UPDATE_WORD = "update-word"
    #: Write a dirty block back to memory (purge flush).
    FLUSH_BLOCK = "flush"
    #: Broadcast that a locked block was unlocked (Section E.4); one cycle.
    UNLOCK_BROADCAST = "unlock-bcast"
    #: Claim write privilege for a whole block without fetching its data
    #: (Feature 9: write-without-fetch).
    WRITE_NO_FETCH = "write-no-fetch"
    #: Record a lock tag in memory when a locked block is purged (E.3).
    MEMORY_LOCK_WRITE = "mem-lock-write"
    #: I/O input: write memory, invalidate all cached copies (E.2).
    IO_INPUT = "io-input"
    #: I/O non-paging output: read without stealing source status (E.2).
    IO_OUTPUT_READ = "io-output-read"
    #: Atomic read-modify-write holding the memory unit throughout
    #: (Feature 6, first method -- Rudolph & Segall).
    MEMORY_RMW = "mem-rmw"

    @property
    def fetches_block(self) -> bool:
        return self in (BusOp.READ_BLOCK, BusOp.READ_EXCL, BusOp.READ_LOCK)

    @property
    def wants_exclusive(self) -> bool:
        return self in (
            BusOp.READ_EXCL,
            BusOp.READ_LOCK,
            BusOp.UPGRADE,
            BusOp.WRITE_NO_FETCH,
            BusOp.IO_INPUT,
        )


_txn_ids = itertools.count(1)


@dataclass(slots=True)
class BusTransaction:
    """One granted bus transaction."""

    op: BusOp
    block: BlockAddr
    requester: CacheId
    #: Word address for word-granularity operations (write/update word).
    word: WordAddr | None = None
    #: Write stamp carried by word-granularity writes.
    stamp: int | None = None
    #: True when the requester will lock the block on arrival even though
    #: the op is READ_EXCL (RMW cache-hold method), or for READ_LOCK.
    lock_intent: bool = False
    #: High arbitration priority (busy-wait registers, Section E.4).
    high_priority: bool = False
    #: For UPDATE_WORD under Rudolph-Segall: also update invalid copies.
    update_invalid: bool = False
    #: Words actually moved for fetch/flush transactions; ``None`` means a
    #: whole block.  Sub-block transfer units (Section D.3) set this.
    words_moved: int | None = None
    #: Extra bus-held cycles (bus-hold RMW method keeps the bus through the
    #: modify phase, Feature 6).
    extra_hold_cycles: int = 0
    txn_id: int = field(default_factory=lambda: next(_txn_ids))

    def __str__(self) -> str:
        extra = f" word={self.word}" if self.word is not None else ""
        return (
            f"{self.op.value}(block={self.block}{extra}, "
            f"from=cache{self.requester})"
        )


