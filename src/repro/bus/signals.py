"""Snoop-response signalling.

On every transaction each snooping cache drives a small set of lines; the
bus aggregates them into one :class:`BusResponse` visible to the requester
and to memory.  This is the open-collector ``hit`` line of the Dragon /
Firefly / Papamarcos-Patel schemes plus the source/dirty status and lock
refusal of the paper's proposal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import CacheId


@dataclass
class SnoopReply:
    """One cache's response to a snooped transaction."""

    #: The cache holds a valid copy (drives the ``hit`` line).
    hit: bool = False
    #: The cache is the source for the block and will supply it.
    supplies: bool = False
    #: Clean/dirty status transferred along with the block (Feature 7 ``S``).
    dirty: bool = False
    #: The block is locked here; the request is refused and the holder has
    #: recorded the waiter (Figure 7).
    locked: bool = False
    #: This cache is a potential read source and will join source
    #: arbitration (Illinois, Feature 8 ``ARB``).
    arbitrates: bool = False
    #: Block contents supplied with the reply (snapshot taken before any
    #: state change) when ``supplies`` or ``arbitrates`` is set.
    data: list[int] | None = None
    #: Block contents written back to memory as part of servicing the snoop
    #: (flush-on-transfer, Feature 7 ``F``; or Synapse's flush-then-memory
    #: service of a read request).
    flush_words: list[int] | None = None
    #: The snooped request must be retried (a cache is holding the block
    #: for an atomic read-modify-write, Feature 6 cache-hold method).
    retry: bool = False
    #: Words the supply moves under sub-block transfer units (D.3);
    #: ``None`` means whole-block.
    supply_words_moved: int | None = None

    @staticmethod
    def miss() -> "SnoopReply":
        return SnoopReply()


@dataclass
class BusResponse:
    """Aggregated snoop result delivered to the requester (and memory)."""

    #: Any cache raised the hit line.
    shared_hit: bool = False
    #: The cache that supplies the data, if any (otherwise memory supplies).
    supplier: CacheId | None = None
    #: Dirty status supplied with a cache-to-cache transfer.
    supplier_dirty: bool = False
    #: The block is locked in another cache; no data is transferred.
    locked: bool = False
    #: The request must be retried (cache-hold RMW in progress).
    retry: bool = False
    #: Lock tag found set in main memory (purged-lock fallback, E.3),
    #: owned by another cache: the request is refused.
    memory_locked: bool = False
    #: The requester owned the memory lock tag: the tag was cleared and
    #: the cache must re-establish its Lock state on the refetched block.
    memory_lock_owner: bool = False
    #: Whether a waiter had been noted while the lock was spilled.
    memory_lock_waiter: bool = False
    #: Number of caches that joined read-source arbitration.
    arbitration_candidates: int = 0
    #: Caches that replied at all (for tests/inspection).
    repliers: list[CacheId] = field(default_factory=list)

    @property
    def from_cache(self) -> bool:
        return self.supplier is not None

    @staticmethod
    def combine(replies: dict[CacheId, SnoopReply],
                choose=None) -> "BusResponse":
        """Fold individual snoop replies into the bus-visible aggregate.

        ``choose`` resolves a multi-candidate read-source arbitration
        (called with the candidate ids sorted ascending, so the default
        tie-break -- lowest id wins -- is the first entry; the paper only
        requires that *some* single cache win).
        """
        response = BusResponse()
        candidates: list[CacheId] = []
        for cache_id, reply in replies.items():
            if reply.hit or reply.supplies or reply.locked:
                response.repliers.append(cache_id)
            if reply.hit:
                response.shared_hit = True
            if reply.locked:
                response.locked = True
            if reply.retry:
                response.retry = True
            if reply.supplies:
                response.supplier = cache_id
                response.supplier_dirty = reply.dirty
            if reply.arbitrates:
                candidates.append(cache_id)
        if response.supplier is None and candidates:
            candidates.sort()
            response.supplier = (
                candidates[0] if choose is None else choose(candidates)
            )
            response.arbitration_candidates = len(candidates)
            response.supplier_dirty = replies[response.supplier].dirty
        return response
