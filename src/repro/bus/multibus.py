"""Dual/multi-bus broadcast systems.

Section A.2: "broadcast is currently seen only in single or dual bus
systems, because this limits the number of simultaneous broadcasters to
one or two."  This module provides the dual (generally k-bus) variant:
blocks are interleaved across buses by block number, each bus arbitrates
independently, and every cache snoops every bus -- so up to k broadcasts
proceed per cycle on disjoint address partitions.

Coherence is unaffected: all transactions for one block serialize on that
block's bus, which is all the single-writer argument needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bus.bus import Bus, BusPort
from repro.bus.signals import SnoopReply
from repro.bus.transaction import BusTransaction
from repro.common.config import TimingConfig
from repro.common.types import BlockAddr, CacheId, Stamp
from repro.obs.core import NULL_OBS

if TYPE_CHECKING:
    from repro.memory.main_memory import MainMemory
    from repro.obs.core import Observability
    from repro.sim.clock import Clock
    from repro.sim.events import TraceLog
    from repro.sim.stats import SimStats


class _BusPortView:
    """One cache's face toward one of the buses: offers the cache's
    current request only when this bus owns the request's block."""

    def __init__(self, port: BusPort, system: "MultiBusSystem",
                 bus_index: int) -> None:
        self._port = port
        self._system = system
        self._bus_index = bus_index
        self.id: CacheId = port.id

    def has_bus_request(self) -> bool:
        if not self._port.has_bus_request():
            return False
        block = getattr(self._port, "current_request_block", lambda: None)()
        if block is None:
            # Ports without routing info (e.g. the I/O processor) default
            # to bus 0.
            return self._bus_index == 0
        return self._system.bus_of(block) == self._bus_index

    def has_request_hint(self) -> bool:
        if not self._port.has_request_hint():
            return False
        block = getattr(self._port, "current_request_block", lambda: None)()
        if block is None:
            return self._bus_index == 0
        return self._system.bus_of(block) == self._bus_index

    def bus_request_priority(self) -> bool:
        return self._port.bus_request_priority()

    def take_bus_transaction(self) -> BusTransaction:
        return self._port.take_bus_transaction()

    def on_txn_granted(self, txn: BusTransaction, response,
                       data: list[Stamp] | None):
        return self._port.on_txn_granted(txn, response, data)

    def snoop(self, txn: BusTransaction) -> SnoopReply:
        return self._port.snoop(txn)

    def finish_bus_release(self) -> None:
        self._port.finish_bus_release()

    # The single-bus Bus peeks at `protocol` for source-loss accounting.
    @property
    def protocol(self):
        return getattr(self._port, "protocol", None)


class MultiBusSystem:
    """k independent buses over block-interleaved address partitions."""

    def __init__(
        self,
        n_buses: int,
        memory: "MainMemory",
        timing: TimingConfig,
        clock: "Clock",
        stats: "SimStats",
        trace: "TraceLog",
        obs: "Observability" = NULL_OBS,
    ) -> None:
        if n_buses < 1:
            raise ValueError("need at least one bus")
        self.n_buses = n_buses
        self.memory = memory
        self.timing = timing
        self.clock = clock
        self.stats = stats
        self.trace = trace
        self.obs = obs
        self.buses = [self._make_bus(i) for i in range(n_buses)]

    def _make_bus(self, index: int) -> Bus:
        """Factory for one serialization domain; subclasses (clustered,
        directory) substitute their own Bus subclass here."""
        return Bus(self.memory, self.timing, self.clock, self.stats,
                   self.trace, obs=self.obs, index=index)

    @property
    def scheduler(self):
        return self.buses[0].scheduler

    @scheduler.setter
    def scheduler(self, value) -> None:
        for bus in self.buses:
            bus.scheduler = value

    def bus_of(self, block: BlockAddr) -> int:
        block_number = block // self.memory.words_per_block
        return block_number % self.n_buses

    def attach(self, port: BusPort) -> None:
        for index, bus in enumerate(self.buses):
            bus.attach(_BusPortView(port, self, index))

    def step(self) -> bool:
        active = False
        for bus in self.buses:
            if bus.step():
                active = True
        return active

    def next_event_cycle(self) -> int:
        """Earliest cycle at which any constituent bus does anything."""
        return min(bus.next_event_cycle() for bus in self.buses)

    @property
    def busy(self) -> bool:
        return any(bus.busy for bus in self.buses)

    @property
    def pending_release(self) -> bool:
        return any(bus.pending_release for bus in self.buses)
