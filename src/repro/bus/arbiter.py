"""Bus arbitration.

Round-robin among equal-priority requesters, with one most-significant
priority bit reserved for busy-wait registers (Section E.4): after an
unlock broadcast, waiting caches assert the bit so one of them wins the
very next arbitration; if no waiter asserts it, arbitration proceeds
normally "with no wasted time".
"""

from __future__ import annotations

from typing import Protocol

from repro.common.types import CacheId


class ArbitrationRequest(Protocol):
    """What the arbiter needs to know about a standing request."""

    @property
    def high_priority(self) -> bool: ...


class Arbiter:
    """Priority + round-robin arbiter over cache ids."""

    def __init__(self, ports: list[CacheId]) -> None:
        if not ports:
            raise ValueError("arbiter needs at least one port")
        self._ports = list(ports)
        self._order = {cid: i for i, cid in enumerate(self._ports)}
        self._last_winner_index = len(self._ports) - 1

    def arbitrate(
        self, requests: dict[CacheId, ArbitrationRequest]
    ) -> CacheId | None:
        """Pick the winning requester, or ``None`` if there are none.

        High-priority requests always beat normal ones; ties within a
        priority class are broken round-robin starting after the previous
        winner.
        """
        candidates = self.ordered_candidates(requests)
        if not candidates:
            return None
        return self.commit(candidates[0])

    def ordered_candidates(
        self, requests: dict[CacheId, ArbitrationRequest]
    ) -> list[CacheId]:
        """The grantable requesters in arbitration-preference order.

        The winning priority class only (high beats normal), rotated so
        the round-robin winner comes first.  Any entry is a legal grant a
        hardware arbiter could make; :meth:`commit` records the one taken.
        """
        if not requests:
            return []
        high = [cid for cid, req in requests.items() if req.high_priority]
        pool = set(high if high else requests)
        n = len(self._ports)
        ordered = []
        for step in range(1, n + 1):
            cid = self._ports[(self._last_winner_index + step) % n]
            if cid in pool:
                ordered.append(cid)
                pool.discard(cid)
        if pool:
            # Candidates must be registered ports.
            raise ValueError(f"unknown requesters: {sorted(pool)}")
        return ordered

    def commit(self, winner: CacheId) -> CacheId:
        """Record ``winner`` as the grant for round-robin fairness."""
        self._last_winner_index = self._order[winner]
        return winner

    @property
    def ports(self) -> list[CacheId]:
        return list(self._ports)
