"""Interconnect-fabric registry (the topology analogue of the protocol
dispatch registry).

Each :data:`~repro.common.config.TOPOLOGY_KINDS` entry maps to a builder
that assembles the corresponding fabric from a
:class:`~repro.common.config.TopologyConfig`:

* ``snoop`` -- the plain single :class:`~repro.bus.bus.Bus` (the paper's
  broadcast bus; also what the engine's fast-forward path is calibrated
  against, so the default stays bit-identical).
* ``multibus`` -- :class:`~repro.bus.multibus.MultiBusSystem` with
  ``topology.buses`` block-interleaved buses (built even for one bus, so
  the port-view wrapper itself is exercised by the conformance matrix).
* ``clustered`` -- :class:`~repro.bus.hierarchy.ClusteredBusSystem`.
* ``directory`` -- :class:`~repro.directory_backend.DirectorySystem`.

``REPRO_TOPOLOGY`` overrides the session default the same way
``REPRO_DISPATCH`` overrides the dispatch core.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable

from repro.common.config import TOPOLOGY_KINDS, TimingConfig, TopologyConfig
from repro.common.errors import ConfigError

if TYPE_CHECKING:
    from repro.memory.main_memory import MainMemory
    from repro.obs.core import Observability
    from repro.sim.clock import Clock
    from repro.sim.events import TraceLog
    from repro.sim.stats import SimStats

#: Fabric kinds the registry can build (same namespace as
#: ``TopologyConfig.kind``).
FABRIC_KINDS: tuple[str, ...] = TOPOLOGY_KINDS

#: Environment override for the default topology kind.
TOPOLOGY_ENV = "REPRO_TOPOLOGY"


def default_topology() -> str:
    """The session-default fabric kind (``REPRO_TOPOLOGY`` or
    ``snoop``)."""
    kind = os.environ.get(TOPOLOGY_ENV, "").strip().lower()
    return kind if kind in FABRIC_KINDS else "snoop"


def _build_snoop(topology: TopologyConfig, memory, timing, clock, stats,
                 trace, obs):
    from repro.bus.bus import Bus

    return Bus(memory, timing, clock, stats, trace, obs=obs)


def _build_multibus(topology: TopologyConfig, memory, timing, clock, stats,
                    trace, obs):
    from repro.bus.multibus import MultiBusSystem

    return MultiBusSystem(topology.buses, memory, timing, clock, stats,
                          trace, obs)


def _build_clustered(topology: TopologyConfig, memory, timing, clock, stats,
                     trace, obs):
    from repro.bus.hierarchy import ClusteredBusSystem

    return ClusteredBusSystem(topology, memory, timing, clock, stats,
                              trace, obs)


def _build_directory(topology: TopologyConfig, memory, timing, clock, stats,
                     trace, obs):
    from repro.directory_backend import DirectorySystem

    return DirectorySystem(topology, memory, timing, clock, stats, trace,
                           obs)


_FABRICS: dict[str, Callable] = {
    "snoop": _build_snoop,
    "multibus": _build_multibus,
    "clustered": _build_clustered,
    "directory": _build_directory,
}


def get_fabric(kind: str) -> Callable:
    """Look up a fabric builder by topology kind."""
    try:
        return _FABRICS[kind]
    except KeyError:
        known = ", ".join(FABRIC_KINDS)
        raise ConfigError(
            f"unknown fabric kind {kind!r}; known fabrics: {known}"
        ) from None


def build_fabric(
    topology: TopologyConfig,
    memory: "MainMemory",
    timing: TimingConfig,
    clock: "Clock",
    stats: "SimStats",
    trace: "TraceLog",
    obs: "Observability",
):
    """Assemble the fabric a :class:`TopologyConfig` describes."""
    return get_fabric(topology.kind)(topology, memory, timing, clock,
                                     stats, trace, obs)


__all__ = [
    "FABRIC_KINDS",
    "TOPOLOGY_ENV",
    "default_topology",
    "get_fabric",
    "build_fabric",
]
