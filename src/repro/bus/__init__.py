"""Single broadcast bus: transactions, snoop signalling, arbitration."""

from repro.bus.arbiter import Arbiter, ArbitrationRequest
from repro.bus.bus import Bus, BusPort
from repro.bus.signals import BusResponse, SnoopReply
from repro.bus.transaction import BusOp, BusTransaction

__all__ = [
    "Arbiter",
    "ArbitrationRequest",
    "Bus",
    "BusOp",
    "BusPort",
    "BusResponse",
    "BusTransaction",
    "SnoopReply",
]
