"""The unified programmatic entry point: ``repro.api``.

Four verbs cover everything the CLI can do, each returning a typed
result object with a stamped ``to_dict()``:

* :func:`simulate` -- run one workload -> :class:`RunResult`;
* :func:`sweep` -- run a workload over processor counts ->
  :class:`SweepResult`;
* :func:`conform` -- the protocol conformance battery ->
  :class:`ConformanceReport`;
* :func:`check` -- the schedule-space model checker / fuzzer ->
  :class:`repro.mc.CheckReport`.

The CLI subcommands (``repro run``, ``repro sweep``, ``repro
conformance``, ``repro check``) are thin wrappers over these functions;
anything they print comes out of the result objects below.

Example::

    from repro import api

    result = api.simulate(protocol="bitar-despain",
                          workload="lock-contention", processors=8)
    print(result.stats.cycles, result.stats.bus_utilization)

    report = api.check(["bitar-despain"], mutations=True)
    assert report.ok
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.config import (CacheConfig, SystemConfig, TopologyConfig,
                                 WaitMode)
from repro.common.schema import stamp
from repro.mc.check import CheckReport
from repro.mc.check import check as _mc_check
from repro.obs.core import ObsResult
from repro.processor.program import LockStyle, Program
from repro.sim.stats import SimStats
from repro.workloads.registry import (WORKLOADS, build_workload,
                                      default_lock_style,
                                      default_words_per_block,
                                      effective_lock_style)

__all__ = [
    "RunResult",
    "SweepResult",
    "ConformanceReport",
    "CheckReport",
    "simulate",
    "sweep",
    "conform",
    "check",
    "lint",
    "attribute",
    "attribute_protocols",
    "WORKLOADS",
]


# -- result types -----------------------------------------------------------


@dataclass
class RunResult:
    """One simulated run: what was run, how, and what it produced."""

    protocol: str
    workload: str
    config: SystemConfig
    stats: SimStats
    #: Present when the run was observed (``sample_interval > 0``).
    obs: ObsResult | None = None
    #: Which execution core drove the protocol: ``compiled`` (dense
    #: dispatch tables) or ``interpreted`` (the transition-table IR).
    dispatch: str = "compiled"
    #: Which interconnect fabric carried the run (a
    #: :data:`~repro.common.config.TOPOLOGY_KINDS` name; schema v5).
    topology: str = "snoop"
    #: The lock style the run's programs actually used (a
    #: :class:`~repro.processor.program.LockStyle` value), or ``None``
    #: for style-blind reference streams with no locks (schema v6).
    lock_style: str | None = None
    #: Sharer-set representation of the directory fabric (a
    #: :data:`~repro.directory_backend.representations.DIRECTORY_ENTRY_KINDS`
    #: name), or ``None`` on non-directory topologies (schema v7).
    directory_entry: str | None = None

    def to_dict(self) -> dict:
        return stamp({
            "kind": "run-result",
            "protocol": self.protocol,
            "workload": self.workload,
            "dispatch": self.dispatch,
            "topology": self.topology,
            "directory_entry": self.directory_entry,
            "lock_style": self.lock_style,
            "config": self.config.to_dict(),
            "stats": self.stats.to_payload(),
            "obs": self.obs.to_dict() if self.obs is not None else None,
        })


@dataclass
class SweepResult:
    """A workload swept over processor counts.

    Under a ``keep_going`` policy the sweep is *partial-result
    tolerant*: a failed point contributes ``NaN`` series values and a
    ``None`` stats entry, and its verdict (status, attempts, error) is
    in :attr:`point_status`.  :attr:`resilience` carries the executor's
    retry/timeout/pool-restart counters (schema v2)."""

    protocol: str
    workload: str
    xs: list[int]
    #: Metric name -> one value per sweep point (NaN for failed points).
    series: dict[str, list[float]]
    #: Per-point stats; ``None`` for points that did not finish OK.
    stats: list[SimStats | None] = field(default_factory=list)
    #: Per-point observability, when sampled.
    observations: list[ObsResult] | None = None
    #: Per-point {index, x, status, attempts, error} verdicts.
    point_status: list[dict] = field(default_factory=list)
    #: Plain-data retry/timeout/restart counters.
    resilience: dict = field(default_factory=dict)
    #: Which execution core drove every point (compiled/interpreted).
    dispatch: str = "compiled"
    #: Which interconnect fabric carried every point (schema v5).
    topology: str = "snoop"
    #: Directory sharer-set representation, or ``None`` off the
    #: directory fabric (schema v7).
    directory_entry: str | None = None

    @property
    def ok(self) -> bool:
        return all(p.get("status") == "ok" for p in self.point_status)

    def to_dict(self) -> dict:
        return stamp({
            "kind": "sweep-result",
            "protocol": self.protocol,
            "workload": self.workload,
            "dispatch": self.dispatch,
            "topology": self.topology,
            "directory_entry": self.directory_entry,
            "xs": list(self.xs),
            "series": {name: list(values)
                       for name, values in self.series.items()},
            "points": [s.to_payload() if s is not None else None
                       for s in self.stats],
            "point_status": [dict(p) for p in self.point_status],
            "resilience": dict(self.resilience),
        })


@dataclass
class ConformanceReport:
    """Findings of the conformance battery for one protocol."""

    protocol: str
    serializing: bool
    findings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return stamp({
            "kind": "conformance-report",
            "protocol": self.protocol,
            "serializing": self.serializing,
            "ok": self.ok,
            "findings": list(self.findings),
        })


# -- config assembly --------------------------------------------------------


def _topology_overrides(
    directory_banks: int | None,
    directory_entry: str | None,
    directory_pointers: int | None,
    directory_region_size: int | None,
    hop_cycles: int | None,
    lookup_cycles: int | None,
) -> dict:
    """The TopologyConfig field overrides of the facade's fabric knobs
    (only the knobs actually given)."""
    overrides: dict = {}
    if directory_banks is not None:
        overrides["directory_banks"] = directory_banks
    if directory_entry is not None:
        overrides["directory_entry"] = directory_entry
    if directory_pointers is not None:
        overrides["directory_pointers"] = directory_pointers
    if directory_region_size is not None:
        overrides["directory_region_size"] = directory_region_size
    if hop_cycles is not None:
        overrides["inter_cluster_hop_cycles"] = hop_cycles
    if lookup_cycles is not None:
        overrides["directory_lookup_cycles"] = lookup_cycles
    return overrides


def _resolve_topology(
    topology: "TopologyConfig | str | None",
    *,
    buses: int = 1,
    clusters: int | None = None,
    directory_banks: int | None = None,
    directory_entry: str | None = None,
    directory_pointers: int | None = None,
    directory_region_size: int | None = None,
    hop_cycles: int | None = None,
    lookup_cycles: int | None = None,
) -> TopologyConfig:
    """Resolve the facade's fabric keywords into a
    :class:`TopologyConfig`.

    ``topology`` may be a full config (used as-is, with any explicit
    knobs applied on top), a kind name, or ``None`` -- which follows
    the ``REPRO_TOPOLOGY`` session default (else ``snoop``).
    ``buses > 1`` selects the multi-bus fabric; ``clusters`` sizes the
    clustered fabric (and doubles as the bank count for ``directory``
    when ``directory_banks`` is not given, matching the CLI's
    deprecated overload).  ``directory_entry`` /
    ``directory_pointers`` / ``directory_region_size`` select the
    sharer-set representation; ``hop_cycles`` / ``lookup_cycles``
    override the link and home-bank timing.
    """
    overrides = _topology_overrides(
        directory_banks, directory_entry, directory_pointers,
        directory_region_size, hop_cycles, lookup_cycles)
    if isinstance(topology, TopologyConfig):
        return replace(topology, **overrides) if overrides else topology
    kind = topology
    if kind is None:
        from repro.bus.fabric import default_topology

        kind = default_topology()
        if buses > 1 and kind in ("snoop", "multibus"):
            # The explicit bus count outranks the env default.
            return TopologyConfig(kind="multibus", buses=buses)
    if kind == "multibus":
        base = TopologyConfig(kind="multibus", buses=buses)
    elif kind == "clustered":
        base = TopologyConfig(kind="clustered", clusters=clusters or 2)
    elif kind == "directory":
        base = TopologyConfig(
            kind="directory",
            directory_banks=directory_banks or clusters or 1)
        overrides.pop("directory_banks", None)
    else:
        # "snoop" -- and anything unknown, which TopologyConfig rejects
        # with the canonical error message.
        base = TopologyConfig(kind=kind)
    return replace(base, **overrides) if overrides else base


def _build_config(
    protocol: str,
    *,
    processors: int = 4,
    buses: int = 1,
    topology: "TopologyConfig | str | None" = None,
    clusters: int | None = None,
    directory_banks: int | None = None,
    directory_entry: str | None = None,
    directory_pointers: int | None = None,
    directory_region_size: int | None = None,
    hop_cycles: int | None = None,
    lookup_cycles: int | None = None,
    words_per_block: int | None = None,
    num_blocks: int = 64,
    work_while_waiting: bool = False,
    seed: int = 0,
) -> SystemConfig:
    """The CLI's defaulting rules, shared by every facade verb."""
    return SystemConfig(
        num_processors=processors,
        protocol=protocol,
        topology=_resolve_topology(
            topology, buses=buses, clusters=clusters,
            directory_banks=directory_banks,
            directory_entry=directory_entry,
            directory_pointers=directory_pointers,
            directory_region_size=directory_region_size,
            hop_cycles=hop_cycles, lookup_cycles=lookup_cycles),
        strict_verify=protocol != "write-through",
        wait_mode=WaitMode.WORK if work_while_waiting else WaitMode.SPIN,
        cache=CacheConfig(
            words_per_block=words_per_block
            or default_words_per_block(protocol),
            num_blocks=num_blocks,
        ),
        seed=seed,
    )


def _resolve_dispatch(dispatch: "str | None") -> str:
    """Resolve and validate a dispatch-mode choice (None = the
    ``REPRO_DISPATCH``/compiled default)."""
    from repro.protocols import DISPATCH_MODES, default_dispatch

    mode = dispatch if dispatch is not None else default_dispatch()
    if mode not in DISPATCH_MODES:
        raise ValueError(f"unknown dispatch mode {mode!r}; "
                         f"expected one of {', '.join(DISPATCH_MODES)}")
    return mode


# -- the verbs --------------------------------------------------------------


def simulate(
    protocol: str = "bitar-despain",
    workload: str = "lock-contention",
    *,
    processors: int = 4,
    config: SystemConfig | None = None,
    programs: list[Program] | None = None,
    lock_style: LockStyle | None = None,
    buses: int = 1,
    topology: "TopologyConfig | str | None" = None,
    clusters: int | None = None,
    directory_banks: int | None = None,
    directory_entry: str | None = None,
    directory_pointers: int | None = None,
    directory_region_size: int | None = None,
    hop_cycles: int | None = None,
    lookup_cycles: int | None = None,
    words_per_block: int | None = None,
    num_blocks: int = 64,
    work_while_waiting: bool = False,
    seed: int = 0,
    check_interval: int = 0,
    fast_forward: bool = False,
    sample_interval: int = 0,
    tracing: bool = False,
    max_wall_seconds: float | None = None,
    dispatch: str | None = None,
) -> RunResult:
    """Run one workload on one protocol.

    ``dispatch`` selects the protocol execution core -- ``"compiled"``
    (dense dispatch tables) or ``"interpreted"`` (the transition-table
    IR); the default follows ``REPRO_DISPATCH`` (else compiled).  Both
    cores produce bit-identical statistics.

    The fabric knobs mirror the CLI: ``directory_banks`` sizes the
    directory fabric's home banks, ``directory_entry`` (plus
    ``directory_pointers`` / ``directory_region_size``) selects the
    sharer-set representation, and ``hop_cycles`` / ``lookup_cycles``
    override the network-hop and home-bank-lookup latencies.

    Pass ``config`` and/or ``programs`` for full control; otherwise the
    convenience keywords assemble them with the CLI's defaulting rules
    (four-word blocks except Rudolph-Segall, strict verification except
    classic write-through, cache-lock style on the proposal).
    ``sample_interval > 0`` attaches the observability layer and returns
    its result alongside the statistics.  ``tracing=True`` additionally
    records causal spans and the per-processor cycle attribution (see
    :mod:`repro.obs.tracing`); both land on ``result.obs``.
    ``max_wall_seconds`` arms the engine watchdog: a wedged run is
    aborted with a :class:`~repro.common.errors.WatchdogTimeout`
    carrying diagnostics.
    """
    from repro.sim.engine import run_workload

    dispatch = _resolve_dispatch(dispatch)
    if config is None:
        config = _build_config(
            protocol, processors=processors, buses=buses,
            topology=topology, clusters=clusters,
            directory_banks=directory_banks,
            directory_entry=directory_entry,
            directory_pointers=directory_pointers,
            directory_region_size=directory_region_size,
            hop_cycles=hop_cycles, lookup_cycles=lookup_cycles,
            words_per_block=words_per_block, num_blocks=num_blocks,
            work_while_waiting=work_while_waiting, seed=seed,
        )
    else:
        protocol = config.protocol
    style_label: str | None = None
    if programs is None:
        programs = build_workload(workload, config, lock_style)
        effective = effective_lock_style(workload, protocol, lock_style)
        style_label = effective.value if effective is not None else None
    elif lock_style is not None:
        style_label = lock_style.value
    obs = None
    if sample_interval or tracing:
        from repro.obs import Observability

        obs = Observability(interval=sample_interval or 100,
                            tracing=tracing)
    stats = run_workload(config, programs, check_interval=check_interval,
                         fast_forward=fast_forward, obs=obs,
                         max_wall_seconds=max_wall_seconds,
                         dispatch=dispatch)
    obs_result = obs.result() if obs is not None else None
    if obs_result is not None and obs_result.attribution is not None:
        # The observability layer cannot know the protocol name; stamp it
        # here so attribution reports are self-describing.
        obs_result.attribution["protocol"] = protocol
    assert config.topology is not None
    return RunResult(
        protocol=protocol,
        workload=workload,
        config=config,
        stats=stats,
        obs=obs_result,
        dispatch=dispatch,
        topology=config.topology.kind,
        lock_style=style_label,
        directory_entry=(config.topology.directory_entry
                         if config.topology.kind == "directory" else None),
    )


#: Metrics reported for every sweep point.
_SWEEP_METRICS = {
    "cycles": lambda s: s.cycles,
    "bus utilization": lambda s: s.bus_utilization,
    "failed lock attempts": lambda s: s.failed_lock_attempts,
}


def _sweep_point(n, *, protocol: str, workload: str,
                 fast_forward: bool = False, sample_interval: int = 0,
                 max_wall_seconds: float | None = None,
                 dispatch: str | None = None,
                 topology: "TopologyConfig | str | None" = None,
                 clusters: int | None = None):
    """One sweep point; module-level so ``jobs > 1`` can pickle it (the
    workload is looked up by name inside the worker process).  With a
    ``sample_interval``, the point runs observed and returns an
    :class:`~repro.analysis.sweeps.ObservedPoint` whose plain-data
    ObsResult pickles back from the worker.  ``max_wall_seconds`` arms
    the engine watchdog inside the point, so a wedged simulation aborts
    with diagnostics even on the serial path."""
    from repro.sim.engine import run_workload

    config = _build_config(protocol, processors=int(n),
                           topology=topology, clusters=clusters)
    programs = build_workload(workload, config)
    if not sample_interval:
        return run_workload(config, programs, fast_forward=fast_forward,
                            max_wall_seconds=max_wall_seconds,
                            dispatch=dispatch)
    from repro.analysis.sweeps import ObservedPoint
    from repro.obs import Observability

    obs = Observability(interval=sample_interval)
    stats = run_workload(config, programs, fast_forward=fast_forward,
                         obs=obs, max_wall_seconds=max_wall_seconds,
                         dispatch=dispatch)
    return ObservedPoint(stats=stats, obs=obs.result())


def _warm_sweep_worker(*, protocol: str, dispatch: str | None = None) -> None:
    """Worker-process warmup: pay the heavy imports and compile the
    protocol's dispatch table once per worker instead of once per point
    (the compiled form is cached on the table object, which every point
    in the process then reuses)."""
    import repro.sim.engine  # noqa: F401 - heavy import, once per worker
    from repro.protocols import get_protocol

    cls = get_protocol(protocol, dispatch)
    table = getattr(cls, "table", None)
    if table is not None and cls.dispatch == "compiled":
        from repro.protocols.compiled import compile_table

        compile_table(table)


def sweep(
    protocol: str = "bitar-despain",
    workload: str = "lock-contention",
    *,
    processors: list[int] | tuple[int, ...] = (2, 4, 8),
    fast_forward: bool = False,
    jobs: int = 1,
    sample_interval: int = 0,
    timeout: float | None = None,
    max_attempts: int = 2,
    keep_going: bool = False,
    faults: "str | object | None" = None,
    fault_seed: int = 0,
    dispatch: str | None = None,
    topology: "TopologyConfig | str | None" = None,
    clusters: int | None = None,
    directory_banks: int | None = None,
    directory_entry: str | None = None,
    directory_pointers: int | None = None,
    directory_region_size: int | None = None,
    hop_cycles: int | None = None,
    lookup_cycles: int | None = None,
    progress=None,
) -> SweepResult:
    """Run ``workload`` at each processor count (optionally in parallel
    worker processes) and collect the scaling series.

    Resilience knobs (see :mod:`repro.analysis.resilient`):
    ``timeout`` bounds each point's wall-clock seconds (enforced by the
    executor with ``jobs > 1`` and by the engine watchdog inside every
    point); ``max_attempts`` bounds retries; ``keep_going`` returns
    partial results (per-point statuses on the result) instead of
    raising on the first bad point; ``faults`` injects a chaos plan --
    either a :class:`~repro.faults.FaultPlan` or a spec string like
    ``"kill@1,hang@2"`` seeded by ``fault_seed``.

    ``progress`` is called as ``progress(done, total, statuses)`` each
    time a point reaches a terminal status -- the hook behind
    ``repro sweep --progress``.
    """
    import functools

    from repro.analysis.resilient import ExecutionPolicy
    from repro.analysis.sweeps import Sweep
    from repro.faults import FaultPlan

    if isinstance(faults, str):
        faults = FaultPlan.parse(faults, seed=fault_seed)
    dispatch = _resolve_dispatch(dispatch)
    resolved_topology = _resolve_topology(
        topology, clusters=clusters, directory_banks=directory_banks,
        directory_entry=directory_entry,
        directory_pointers=directory_pointers,
        directory_region_size=directory_region_size,
        hop_cycles=hop_cycles, lookup_cycles=lookup_cycles)
    run = functools.partial(
        _sweep_point, protocol=protocol, workload=workload,
        fast_forward=fast_forward, sample_interval=sample_interval,
        max_wall_seconds=timeout, dispatch=dispatch,
        topology=resolved_topology,
    )
    policy = ExecutionPolicy(
        max_attempts=max_attempts,
        timeout=timeout,
        keep_going=keep_going,
        faults=faults,
        seed=fault_seed,
    )
    plan = Sweep(xs=list(processors), run=run, metrics=dict(_SWEEP_METRICS))
    series = plan.execute(jobs=jobs, policy=policy,
                          warmup=functools.partial(
                              _warm_sweep_worker, protocol=protocol,
                              dispatch=dispatch),
                          progress=progress)
    return SweepResult(
        protocol=protocol,
        workload=workload,
        xs=list(processors),
        series={name: list(s.values) for name, s in series.items()},
        stats=list(plan.results),
        observations=(list(plan.observations) if sample_interval else None),
        point_status=[outcome.to_dict() for outcome in plan.outcomes],
        resilience=dict(plan.resilience),
        dispatch=dispatch,
        topology=resolved_topology.kind,
        directory_entry=(resolved_topology.directory_entry
                         if resolved_topology.kind == "directory" else None),
    )


def attribute(
    protocol: str = "bitar-despain",
    workload: str = "lock-contention",
    **kwargs,
):
    """Run one traced workload and return its cycle-attribution report.

    A convenience over ``simulate(..., tracing=True)``: every simulated
    cycle of every processor lands in exactly one of the eight
    attribution buckets (:data:`repro.obs.attribution.BUCKETS`), the
    per-processor sums are asserted against the engine's own counters,
    and the report carries the contended-block and lock-handoff-chain
    summary.  Returns an
    :class:`~repro.obs.attribution.AttributionReport`.
    """
    from repro.obs.attribution import AttributionReport

    result = simulate(protocol, workload, tracing=True, **kwargs)
    assert result.obs is not None and result.obs.attribution is not None
    return AttributionReport.from_dict(result.obs.attribution)


def attribute_protocols(
    protocols,
    workload: str = "lock-contention",
    **kwargs,
) -> dict:
    """Attribute the same workload under several protocols and return
    the stamped comparison payload (kind ``attribution-comparison``) --
    a causal explanation of the Table 1 cycle-count differences: which
    buckets (miss-wait, invalidation refetch, lock spin, ...) each
    protocol pays for the same work."""
    from repro.obs.attribution import compare_attributions

    reports = {name: attribute(name, workload, **kwargs)
               for name in protocols}
    return compare_attributions(reports)


def conform(protocol: str, *, serializing: bool | None = None) -> ConformanceReport:
    """Run the conformance battery; ``serializing`` defaults to False
    only for classic write-through (whose stale reads are expected)."""
    from repro.verify.conformance import check_conformance

    if serializing is None:
        serializing = protocol != "write-through"
    findings = check_conformance(protocol, serializing=serializing)
    return ConformanceReport(
        protocol=protocol,
        serializing=serializing,
        findings=[str(finding) for finding in findings],
    )


def check(protocols=None, **kwargs) -> CheckReport:
    """Model-check protocols: exhaustive exploration of the small
    scenarios, fuzzing of the rest, optional mutation testing.  See
    :func:`repro.mc.check.check` for the keyword reference."""
    return _mc_check(protocols, **kwargs)


def lint(protocols=None) -> dict:
    """Statically lint protocol transition tables.

    Runs the five rule families (completeness, determinism,
    reachability, write-serialization, lock-state sanity) over the named
    protocols (default: all ten) and returns the schema-stamped lint
    report -- the same payload as ``repro lint --json``.
    """
    from repro.lint import build_report, lint_protocol

    from repro.protocols import PROTOCOLS

    names = sorted(PROTOCOLS) if protocols is None else list(protocols)
    return build_report({name: lint_protocol(name) for name in names})
