"""Per-block directory state held at a home bank.

Each entry tracks the *sharer vector* -- the caches that might react to
a transaction on the block (a tagged frame, an armed busy-wait, or an
RMW hold) -- and the *owner*, the cache whose copy is dirty.  The vector
is deliberately conservative: a cache stays listed until a probe shows
it no longer cares, so the directory can prune deliveries but never
starve a cache of a message it needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.types import BlockAddr, CacheId
from repro.directory_backend.representations import FullBitVector, SharerSet


@dataclass
class DirectoryEntry:
    """Directory state for one block at its home bank."""

    #: Caches that may hold or be waiting on the block, behind one of
    #: the pluggable representations (full bit vector by default).
    sharers: SharerSet = field(default_factory=FullBitVector)
    #: The cache holding the block dirty, if any (always also a sharer).
    owner: CacheId | None = None


class DirectoryState:
    """All directory entries of one home bank, plus message tallies.

    ``representation`` is the zero-arg sharer-set constructor new
    entries are built with (see
    :mod:`repro.directory_backend.representations`).

    The tallies model the point-to-point traffic a real directory fabric
    would put on the network: one request and one response per
    transaction, a forward when a cache supplies the data, an
    invalidation (or probe) per non-supplying listed cache, and an ack
    back from every probed cache.
    """

    def __init__(self, bank: int,
                 representation: Callable[[], SharerSet] = FullBitVector,
                 ) -> None:
        self.bank = bank
        self.representation = representation
        self._entries: dict[int, DirectoryEntry] = {}
        self.requests = 0
        self.responses = 0
        self.forwards = 0
        self.invalidations = 0
        self.acks = 0

    def entry(self, block_number: int) -> DirectoryEntry:
        found = self._entries.get(block_number)
        if found is None:
            found = self._entries[block_number] = DirectoryEntry(
                sharers=self.representation())
        return found

    def entries(self) -> dict[int, DirectoryEntry]:
        return self._entries

    @property
    def messages(self) -> int:
        return (self.requests + self.responses + self.forwards
                + self.invalidations + self.acks)

    def tallies(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "forwards": self.forwards,
            "invalidations": self.invalidations,
            "acks": self.acks,
        }


def block_number_of(block: BlockAddr, words_per_block: int) -> int:
    return block // words_per_block
