"""The directory fabric: home banks, sharer vectors, point-to-point
delivery.

Blocks interleave across ``directory_banks`` home banks exactly as they
interleave across buses in the multi-bus system, so every transaction on
a block serializes at its home bank -- the same single-writer argument,
with the bank in the bus's role.  Instead of broadcasting, the bank
consults the block's :class:`~repro.directory_backend.state.DirectoryEntry`
and probes only the listed sharers.

**Why pruning is sound.**  A cache reacts to a snoop only when the block
is tagged in a frame, its busy-wait register is armed on the block, or
an RMW hold matches (the fast-miss test in ``Cache.snoop``).  Every one
of those conditions is created exclusively by that cache's *own* bus
transaction on the same block -- installs happen in ``on_txn_granted``,
the busy-wait arms when the cache's own READ_LOCK is refused, the hold
is set by the cache's own fetch.  The directory therefore (1) enrolls
every requester into the block's sharer vector at its transaction and
(2) after each transaction re-probes exactly the caches whose condition
could have changed -- the requester and the probed set -- dropping the
ones that no longer care.  A cache outside the vector would have
answered miss; pruning it changes no replies, only traffic.

Timing: on top of the bus occupancy model, every transaction pays the
home-bank ``directory_lookup_cycles`` and a request/response round trip
(``2 * inter_cluster_hop_cycles``); a cache-to-cache supply adds the
third hop of the classic forwarded transfer; a nonzero probe fanout adds
an invalidate/ack round trip.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bus.bus import Bus, BusPort
from repro.bus.multibus import MultiBusSystem
from repro.bus.signals import SnoopReply
from repro.bus.transaction import BusTransaction
from repro.cache.busy_wait import WaitPhase
from repro.common.config import TimingConfig, TopologyConfig
from repro.common.types import CacheId
from repro.directory_backend.state import DirectoryEntry, DirectoryState

if TYPE_CHECKING:
    from repro.memory.main_memory import MainMemory
    from repro.obs.core import Observability
    from repro.sim.clock import Clock
    from repro.sim.events import TraceLog
    from repro.sim.stats import SimStats


def _underlying(port: BusPort):
    """Unwrap a multi-bus port view down to the attached component."""
    return getattr(port, "_port", port)


def _cache_cares(cache, block) -> bool:
    """The fast-miss test of ``Cache.snoop``, asked from outside: would
    this cache react to a transaction on ``block``?"""
    if block in cache.array._tagged:
        return True
    if cache._held_block == block:
        return True
    wait = cache.busy_wait
    return wait.phase is not WaitPhase.IDLE and wait.block == block


class DirectoryFabric(Bus):
    """One home bank: serializes its blocks' transactions and probes
    only the caches its directory lists for the block."""

    def __init__(self, system: "DirectorySystem", index: int) -> None:
        super().__init__(system.memory, system.timing, system.clock,
                         system.stats, system.trace, obs=system.obs,
                         index=index)
        self._system = system
        self.directory = DirectoryState(index)
        self._last_probed: set[CacheId] = set()

    # -- delivery -----------------------------------------------------------

    def _entry_of(self, txn: BusTransaction) -> DirectoryEntry:
        block_number = txn.block // self.memory.words_per_block
        return self.directory.entry(block_number)

    def _snoop_all(
        self, requester: BusPort, txn: BusTransaction
    ) -> dict[CacheId, SnoopReply]:
        entry = self._entry_of(txn)
        entry.sharers.add(requester.id)
        self.directory.requests += 1
        replies: dict[CacheId, SnoopReply] = {}
        # Port order (not sharer-set order) keeps reply combination and
        # read-source arbitration deterministic and bus-identical.
        for cid, port in self._ports.items():
            if cid == requester.id or cid not in entry.sharers:
                continue
            replies[cid] = port.snoop(txn)
        self._last_probed = set(replies)
        return replies

    def _execute(self, port: BusPort, txn: BusTransaction) -> None:
        self._last_probed = set()
        super()._execute(port, txn)
        self._refresh(txn, {txn.requester} | self._last_probed)

    def _refresh(self, txn: BusTransaction, probed: set[CacheId]) -> None:
        """Re-derive directory membership for the caches this
        transaction could have changed (requester + probed set)."""
        entry = self._entry_of(txn)
        for cid in probed:
            view = self._ports.get(cid)
            if view is None:
                continue
            cache = _underlying(view)
            if not hasattr(cache, "array"):
                # Cacheless ports (I/O) answer every snoop with a miss;
                # the directory never needs to list them.
                entry.sharers.discard(cid)
                continue
            if _cache_cares(cache, txn.block):
                entry.sharers.add(cid)
                line = cache.line_for(txn.block)
                if line is not None and line.state.dirty:
                    entry.owner = cid
                elif entry.owner == cid:
                    entry.owner = None
            else:
                entry.sharers.discard(cid)
                if entry.owner == cid:
                    entry.owner = None

    # -- timing and traffic --------------------------------------------------

    def _duration(self, txn, response, replies, info) -> int:
        cycles = super()._duration(txn, response, replies, info)
        topo = self._system.topology
        hop = topo.inter_cluster_hop_cycles
        # Home-bank lookup plus the request/response round trip.
        cycles += topo.directory_lookup_cycles + 2 * hop
        directory = self.directory
        directory.responses += 1
        probes = len(replies)
        if response.supplier is not None:
            # Three-hop forwarded supply: home -> owner -> requester.
            directory.forwards += 1
            directory.invalidations += probes - 1
            cycles += hop
        else:
            directory.invalidations += probes
        directory.acks += probes
        if probes:
            # The slowest probe's invalidate/ack round trip.
            cycles += 2 * hop
        if self.obs.active:
            self.obs.record_directory_msgs(
                self.clock.cycle, "request", txn.block, self.index)
            self.obs.record_directory_msgs(
                self.clock.cycle, "response", txn.block, self.index)
            if response.supplier is not None:
                self.obs.record_directory_msgs(
                    self.clock.cycle, "forward", txn.block, self.index)
            if probes:
                self.obs.record_directory_msgs(
                    self.clock.cycle, "invalidation", txn.block,
                    self.index, max(0, probes - (1 if response.supplier
                                                 is not None else 0)))
                self.obs.record_directory_msgs(
                    self.clock.cycle, "ack", txn.block, self.index, probes)
        return cycles


class DirectorySystem(MultiBusSystem):
    """``directory_banks`` home banks over block-interleaved partitions."""

    def __init__(
        self,
        topology: TopologyConfig,
        memory: "MainMemory",
        timing: TimingConfig,
        clock: "Clock",
        stats: "SimStats",
        trace: "TraceLog",
        obs: "Observability" = None,  # type: ignore[assignment]
    ) -> None:
        from repro.obs.core import NULL_OBS

        self.topology = topology
        super().__init__(topology.directory_banks, memory, timing, clock,
                         stats, trace, obs if obs is not None else NULL_OBS)

    def _make_bus(self, index: int) -> Bus:
        return DirectoryFabric(self, index)

    @property
    def banks(self) -> list[DirectoryState]:
        return [bus.directory for bus in self.buses]

    def message_tallies(self) -> dict[str, int]:
        """Point-to-point message counts summed over all home banks."""
        total = {"requests": 0, "responses": 0, "forwards": 0,
                 "invalidations": 0, "acks": 0}
        for bank in self.banks:
            for key, value in bank.tallies().items():
                total[key] += value
        return total

    @property
    def messages(self) -> int:
        return sum(bank.messages for bank in self.banks)
