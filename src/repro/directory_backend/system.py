"""The directory fabric: home banks, sharer vectors, point-to-point
delivery.

Blocks interleave across ``directory_banks`` home banks exactly as they
interleave across buses in the multi-bus system, so every transaction on
a block serializes at its home bank -- the same single-writer argument,
with the bank in the bus's role.  Instead of broadcasting, the bank
dispatches the request through the home-bank
:class:`~repro.directory_backend.table.DirectoryTable` (compiled to
dense dispatch like any protocol table) and executes the matched row's
actions: probe-set selection, membership refresh, message tallies, and
hop/lookup timing.

**Why pruning is sound.**  A cache reacts to a snoop only when
:meth:`~repro.cache.cache.Cache.cares_about` holds -- the block is
tagged in a frame, the busy-wait register is armed on the block, or an
RMW hold matches.  Every one of those conditions is created exclusively
by that cache's *own* bus transaction on the same block, so a cache
outside the sharer set would have answered miss; pruning it changes no
replies, only traffic.  The obligations that keep the sharer set honest
are lint rules over the table rather than prose: every delivery row
must ``enroll`` the requester, probe, and ``refresh`` the caches the
transaction could have changed (``directory-sharer-drop``), and rows
meeting an overflowed -- imprecise -- representation must broadcast
(``directory-overflow-policy``).  See
:mod:`repro.directory_backend.table`.

Timing: on top of the bus occupancy model, the matched row's ``pay-*``
atoms charge the home-bank ``directory_lookup_cycles``, a
request/response round trip (``2 * inter_cluster_hop_cycles``), the
third hop of a cache-to-cache forwarded supply, and an invalidate/ack
round trip when the probe fanout is nonzero.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bus.bus import Bus, BusPort
from repro.bus.multibus import MultiBusSystem
from repro.bus.signals import SnoopReply
from repro.bus.transaction import BusTransaction
from repro.common.config import TimingConfig, TopologyConfig
from repro.common.types import CacheId
from repro.directory_backend.representations import representation_factory
from repro.directory_backend.state import DirectoryEntry, DirectoryState
from repro.directory_backend.table import (
    DIR_EVENT_OF,
    HOME_BANK_TABLE,
    DirectoryTable,
    guard_bits_of,
    home_state_of,
)
from repro.protocols.compiled import compile_table
from repro.protocols.table import Rule

if TYPE_CHECKING:
    from repro.memory.main_memory import MainMemory
    from repro.obs.core import Observability
    from repro.sim.clock import Clock
    from repro.sim.events import TraceLog
    from repro.sim.stats import SimStats


def _underlying(port: BusPort):
    """Unwrap a multi-bus port view down to the attached component."""
    return getattr(port, "_port", port)


class DirectoryFabric(Bus):
    """One home bank: serializes its blocks' transactions and executes
    the home-bank table's actions to deliver them."""

    #: The home-bank policy.  A class attribute so the mc mutation
    #: harness can patch it exactly like a protocol table.
    table: DirectoryTable = HOME_BANK_TABLE

    def __init__(self, system: "DirectorySystem", index: int) -> None:
        super().__init__(system.memory, system.timing, system.clock,
                         system.stats, system.trace, obs=system.obs,
                         index=index)
        self._system = system
        self.directory = DirectoryState(
            index, representation_factory(system.topology))
        self._last_probed: set[CacheId] = set()
        # Resolved per instance so a class-level ``table`` patch (the mc
        # mutation harness) is honoured by instances created under it.
        self._dispatch = compile_table(self.table)
        self._active_row: Rule | None = None

    # -- delivery -----------------------------------------------------------

    def _entry_of(self, txn: BusTransaction) -> DirectoryEntry:
        block_number = txn.block // self.memory.words_per_block
        return self.directory.entry(block_number)

    def _snoop_all(
        self, requester: BusPort, txn: BusTransaction
    ) -> dict[CacheId, SnoopReply]:
        entry = self._entry_of(txn)
        sharers = entry.sharers
        rid = requester.id
        # Port order (not sharer-set order) keeps reply combination and
        # read-source arbitration deterministic and bus-identical.
        ports = self._ports
        peers = any(cid != rid and sharers.listed(cid) for cid in ports)
        row = self._dispatch.lookup_bits(
            home_state_of(entry), DIR_EVENT_OF[txn.op],
            guard_bits_of(entry, rid, peers))
        self._active_row = row
        replies: dict[CacheId, SnoopReply] = {}
        for action in row.actions:
            if action == "enroll":
                sharers.enroll(rid)
            elif action == "count-request":
                self.directory.requests += 1
            elif action == "probe-listed":
                for cid, port in ports.items():
                    if cid != rid and sharers.listed(cid):
                        replies[cid] = port.snoop(txn)
            elif action == "probe-all":
                for cid, port in ports.items():
                    if cid != rid:
                        replies[cid] = port.snoop(txn)
        self._last_probed = set(replies)
        return replies

    def _execute(self, port: BusPort, txn: BusTransaction) -> None:
        self._active_row = None
        self._last_probed = set()
        super()._execute(port, txn)
        row = self._active_row
        if row is not None and "refresh" in row.actions:
            self._refresh(txn, {txn.requester} | self._last_probed)

    def _refresh(self, txn: BusTransaction, probed: set[CacheId]) -> None:
        """Re-derive directory membership for the caches this
        transaction could have changed (requester + probed set).

        A ``probe-all`` round covered every port, so the refresh is
        *complete* and a lossy representation may rebuild its tracking
        exactly (Dir-n-B collapsing out of broadcast mode)."""
        entry = self._entry_of(txn)
        keep: list[CacheId] = []
        drop: list[CacheId] = []
        for cid in probed:
            view = self._ports.get(cid)
            if view is None:
                continue
            cache = _underlying(view)
            if not hasattr(cache, "array"):
                # Cacheless ports (I/O) answer every snoop with a miss;
                # the directory never needs to list them.
                drop.append(cid)
                continue
            if cache.cares_about(txn.block):
                keep.append(cid)
                line = cache.line_for(txn.block)
                if line is not None and line.state.dirty:
                    entry.owner = cid
                elif entry.owner == cid:
                    entry.owner = None
            else:
                drop.append(cid)
                if entry.owner == cid:
                    entry.owner = None
        row = self._active_row
        complete = row is not None and "probe-all" in row.actions
        entry.sharers.refresh(keep, drop, complete=complete)

    # -- timing and traffic --------------------------------------------------

    def _duration(self, txn, response, replies, info) -> int:
        cycles = super()._duration(txn, response, replies, info)
        row = self._active_row
        if row is None:
            return cycles
        topo = self._system.topology
        hop = topo.inter_cluster_hop_cycles
        directory = self.directory
        probes = len(replies)
        supplied = response.supplier is not None
        actions = row.actions
        if "pay-lookup" in actions:
            cycles += topo.directory_lookup_cycles
        if "pay-round-trip" in actions:
            cycles += 2 * hop
        if supplied and "pay-forward-hop" in actions:
            # Three-hop forwarded supply: home -> owner -> requester.
            cycles += hop
        if probes and "pay-inval-round-trip" in actions:
            # The slowest probe's invalidate/ack round trip.
            cycles += 2 * hop
        obs_active = self.obs.active
        if obs_active and "count-request" in actions:
            self.obs.record_directory_msgs(
                self.clock.cycle, "request", txn.block, self.index)
        if "count-response" in actions:
            directory.responses += 1
            if obs_active:
                self.obs.record_directory_msgs(
                    self.clock.cycle, "response", txn.block, self.index)
        if "tally-traffic" in actions:
            # Single source for the network message counts: the same
            # forward/invalidation/ack arithmetic feeds the bank's
            # tallies and the observability counters.
            forwards = 1 if supplied else 0
            invalidations = probes - forwards
            directory.forwards += forwards
            directory.invalidations += invalidations
            directory.acks += probes
            if obs_active:
                if supplied:
                    self.obs.record_directory_msgs(
                        self.clock.cycle, "forward", txn.block, self.index)
                if probes:
                    self.obs.record_directory_msgs(
                        self.clock.cycle, "invalidation", txn.block,
                        self.index, invalidations)
                    self.obs.record_directory_msgs(
                        self.clock.cycle, "ack", txn.block, self.index,
                        probes)
        return cycles


class DirectorySystem(MultiBusSystem):
    """``directory_banks`` home banks over block-interleaved partitions."""

    def __init__(
        self,
        topology: TopologyConfig,
        memory: "MainMemory",
        timing: TimingConfig,
        clock: "Clock",
        stats: "SimStats",
        trace: "TraceLog",
        obs: "Observability" = None,  # type: ignore[assignment]
    ) -> None:
        from repro.obs.core import NULL_OBS

        self.topology = topology
        super().__init__(topology.directory_banks, memory, timing, clock,
                         stats, trace, obs if obs is not None else NULL_OBS)

    def _make_bus(self, index: int) -> Bus:
        return DirectoryFabric(self, index)

    @property
    def banks(self) -> list[DirectoryState]:
        return [bus.directory for bus in self.buses]

    def message_tallies(self) -> dict[str, int]:
        """Point-to-point message counts summed over all home banks.

        Keys come from the banks themselves, so a bank growing a new
        tally kind shows up here instead of raising."""
        total: dict[str, int] = {}
        for bank in self.banks:
            for key, value in bank.tallies().items():
                total[key] = total.get(key, 0) + value
        return total

    @property
    def messages(self) -> int:
        return sum(bank.messages for bank in self.banks)
