"""Directory-based coherence backend (the ``directory`` topology kind).

Replaces broadcast snooping with per-block directory state held at home
banks: every transaction serializes at its block's home bank, which
forwards it point-to-point only to the caches the directory lists as
holding (or waiting on) the block, instead of broadcasting to all N.
The protocols themselves -- their transition tables, the linter, the
model checker, and compiled dispatch -- apply unchanged: the directory
is purely a delivery fabric that prunes snoops the filtered caches would
have answered with a miss anyway.  The home-bank policy itself is
TransitionTable IR (:mod:`repro.directory_backend.table`), and the
per-block sharer tracking is one of three pluggable representations
(:mod:`repro.directory_backend.representations`).
"""

from repro.directory_backend.representations import (
    DIRECTORY_ENTRY_KINDS,
    CoarseVector,
    FullBitVector,
    LimitedPointerSet,
    SharerSet,
    bits_per_block,
)
from repro.directory_backend.state import DirectoryEntry, DirectoryState
from repro.directory_backend.system import DirectoryFabric, DirectorySystem
from repro.directory_backend.table import (
    HOME_BANK_TABLE,
    DirectoryTable,
    DirEvent,
    HomeState,
    build_home_bank_table,
)

__all__ = [
    "DIRECTORY_ENTRY_KINDS",
    "CoarseVector",
    "DirEvent",
    "DirectoryEntry",
    "DirectoryFabric",
    "DirectoryState",
    "DirectorySystem",
    "DirectoryTable",
    "FullBitVector",
    "HOME_BANK_TABLE",
    "HomeState",
    "LimitedPointerSet",
    "SharerSet",
    "bits_per_block",
    "build_home_bank_table",
]
