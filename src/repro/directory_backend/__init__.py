"""Directory-based coherence backend (the ``directory`` topology kind).

Replaces broadcast snooping with per-block directory state held at home
banks: every transaction serializes at its block's home bank, which
forwards it point-to-point only to the caches the directory lists as
holding (or waiting on) the block, instead of broadcasting to all N.
The protocols themselves -- their transition tables, the linter, the
model checker, and compiled dispatch -- apply unchanged: the directory
is purely a delivery fabric that prunes snoops the filtered caches would
have answered with a miss anyway.
"""

from repro.directory_backend.state import DirectoryEntry, DirectoryState
from repro.directory_backend.system import DirectoryFabric, DirectorySystem

__all__ = [
    "DirectoryEntry",
    "DirectoryState",
    "DirectoryFabric",
    "DirectorySystem",
]
