"""The home-bank policy as TransitionTable IR.

PR 8 gave the directory fabric a fixed, procedural probe policy; this
module lifts it into the same :class:`~repro.protocols.table.Rule`
vocabulary the cache-side protocols use, so the home bank is lintable
(``repro lint``), mutable (the mc harness edits rows, not code), and
compilable (the :class:`~repro.protocols.compiled.CompiledTable` dense
dispatch, via a directory :class:`DispatchVocabulary`).

**States** are the classic directory-entry occupancies: ``UNCACHED``
(no sharer listed), ``SHARED`` (clean sharers listed), ``OWNED`` (a
dirty owner listed), and ``OVERFLOW`` (a lossy representation lost
precision -- Dir-n-B's broadcast bit).  The fabric *re-derives* the
concrete state from the entry after each refresh (``home_state_of``):
pointer overflow is a representation event, not a request event, so the
rows' ``next_state`` documents the nominal occupancy and the derivation
is authoritative.

**Events** are request classes over the full bus-op alphabet
(:data:`DIR_EVENT_OF` is total -- the ``directory-completeness`` lint
enforces it): block fetches, exclusive fetches, upgrades, single-word
traffic, and control traffic (flushes, unlock broadcasts, memory-side
RMW, I/O).

**Guards** describe the entry the request met: occupancy
(``dir-peers``/``dir-alone``), owner identity
(``dir-owner-self``/``dir-owner-other``), and representation precision
(``dir-overflowed``/``dir-precise``).  The default table is guard-free
-- one row per (state, event) -- but mutations and future hybrid
policies may split rows on them.

**Actions** execute in three phases of the fabric:

* delivery (``_snoop_all``): ``enroll`` the requester into the sharer
  set, ``count-request``, and select the probe set -- ``probe-listed``
  (the representation's tracked membership, in port order) or
  ``probe-all`` (every other port; the only sound choice when the
  representation has overflowed);
* membership (``_execute``): ``refresh`` re-derives membership for the
  caches the transaction could have changed;
* accounting (``_duration``): ``count-response`` and ``tally-traffic``
  update the bank's message tallies (single-sourced to the observability
  feed), and the ``pay-*`` atoms charge the timing model --
  ``pay-lookup`` (home-bank lookup), ``pay-round-trip`` (request/
  response), ``pay-forward-hop`` (third hop of a cache-to-cache
  supply), ``pay-inval-round-trip`` (the slowest probe's
  invalidate/ack).

The soundness obligations the old module argued in prose are now lint
rules (see ``repro.lint.rules``): every delivery row must enroll,
probe, and refresh (``directory-sharer-drop``), overflowed entries must
be probed by broadcast (``directory-overflow-policy``), and the table
must cover the whole request alphabet (``directory-completeness``).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from repro.bus.transaction import BusOp
from repro.protocols.compiled import DispatchVocabulary
from repro.protocols.table import Rule, TransitionTable, rule

if TYPE_CHECKING:
    from repro.common.types import CacheId
    from repro.directory_backend.state import DirectoryEntry


class HomeState(Enum):
    """Directory-entry occupancy at the home bank."""

    UNCACHED = "home-uncached"
    SHARED = "home-shared"
    OWNED = "home-owned"
    OVERFLOW = "home-overflow"


class DirEvent(Enum):
    """Request classes of the bus-op alphabet, as seen by a home bank."""

    REQ_FETCH = "req-fetch"
    REQ_FETCH_EXCL = "req-fetch-excl"
    REQ_UPGRADE = "req-upgrade"
    REQ_WORD = "req-word"
    REQ_CONTROL = "req-control"


#: Total map from every bus operation to its directory event class --
#: the request alphabet the ``directory-completeness`` lint covers.
DIR_EVENT_OF: dict[BusOp, DirEvent] = {
    BusOp.READ_BLOCK: DirEvent.REQ_FETCH,
    BusOp.IO_OUTPUT_READ: DirEvent.REQ_FETCH,
    BusOp.READ_EXCL: DirEvent.REQ_FETCH_EXCL,
    BusOp.READ_LOCK: DirEvent.REQ_FETCH_EXCL,
    BusOp.UPGRADE: DirEvent.REQ_UPGRADE,
    BusOp.WRITE_NO_FETCH: DirEvent.REQ_UPGRADE,
    BusOp.WRITE_WORD: DirEvent.REQ_WORD,
    BusOp.UPDATE_WORD: DirEvent.REQ_WORD,
    BusOp.MEMORY_RMW: DirEvent.REQ_WORD,
    BusOp.FLUSH_BLOCK: DirEvent.REQ_CONTROL,
    BusOp.UNLOCK_BROADCAST: DirEvent.REQ_CONTROL,
    BusOp.MEMORY_LOCK_WRITE: DirEvent.REQ_CONTROL,
    BusOp.IO_INPUT: DirEvent.REQ_CONTROL,
}

#: Two-valued guard families of the directory vocabulary.
DIR_GUARD_FAMILIES: dict[str, tuple[str, str]] = {
    "dir-occupancy": ("dir-peers", "dir-alone"),
    "dir-owner": ("dir-owner-self", "dir-owner-other"),
    "dir-entry": ("dir-overflowed", "dir-precise"),
}

#: Guard-bit order: every directory event consults all three families.
DIR_BIT_FAMILIES: tuple[str, ...] = ("dir-occupancy", "dir-owner",
                                     "dir-entry")

#: Delivery-phase actions that select the probe set.
PROBE_ACTIONS = frozenset({"probe-listed", "probe-all"})

#: The full directory action catalog, by phase.
DELIVERY_ACTIONS = ("enroll", "count-request", "probe-listed",
                    "probe-all")
MEMBERSHIP_ACTIONS = ("refresh",)
ACCOUNTING_ACTIONS = ("count-response", "tally-traffic", "pay-lookup",
                      "pay-round-trip", "pay-forward-hop",
                      "pay-inval-round-trip")
DIR_ACTIONS = DELIVERY_ACTIONS + MEMBERSHIP_ACTIONS + ACCOUNTING_ACTIONS


#: The dense index spaces the compiler lowers directory tables against.
DIRECTORY_VOCABULARY = DispatchVocabulary(
    tuple(HomeState), tuple(DirEvent), DIR_GUARD_FAMILIES,
    lambda event: DIR_BIT_FAMILIES)


class DirectoryTable(TransitionTable):
    """A home-bank transition table.

    Same rule vocabulary, index, ``lookup``, and ``without``/``rewrite``
    mutation helpers as the cache-side tables; only the vocabulary (and
    therefore the compiled dense shapes) differs.
    """

    #: Dispatched on by ``repro.lint.rules.lint_table``.
    table_kind = "directory"
    #: Picked up by ``repro.protocols.compiled.compile_table``.
    vocabulary = DIRECTORY_VOCABULARY

    def reachable_states(self) -> frozenset:
        """All four home states.  Next-state edges alone cannot reach
        ``OVERFLOW`` (pointer overflow is a representation event raised
        by ``enroll``, not a request event), and the fabric re-derives
        occupancy from the entry after every refresh -- so every state
        is live whenever a lossy representation is configured, and the
        directory lint demands coverage of the whole matrix."""
        return frozenset(HomeState)

    def _replaced(self, rules: tuple[Rule, ...]) -> "DirectoryTable":
        return DirectoryTable(
            self.name, rules, lost_copy=self.lost_copy,
            machinery_ops=self.machinery_ops,
            transient_states=self.transient_states, errors=self.errors,
        )


def build_home_bank_table() -> DirectoryTable:
    """The default home-bank policy, one row per (state, event).

    Every row enrolls the requester, counts the request, probes, then
    refreshes membership and settles the accounting atoms; precise
    states probe the listed sharers, ``OVERFLOW`` broadcasts.  This is
    exactly the pre-refactor inline policy (the conformance golden pins
    it bit-identical under the full bit vector); representation-specific
    behavior lives entirely in the sharer set the actions operate on.
    """
    common = ("enroll", "count-request")
    settle = ("refresh", "count-response", "tally-traffic", "pay-lookup",
              "pay-round-trip", "pay-forward-hop", "pay-inval-round-trip")
    rows = []
    for state in (HomeState.UNCACHED, HomeState.SHARED, HomeState.OWNED):
        next_state = (HomeState.SHARED if state is HomeState.UNCACHED
                      else state)
        for event in DirEvent:
            rows.append(rule(state, event, next_state,
                             common + ("probe-listed",) + settle))
    for event in DirEvent:
        rows.append(rule(HomeState.OVERFLOW, event, HomeState.OVERFLOW,
                         common + ("probe-all",) + settle))
    return DirectoryTable("directory-home-bank", rows)


#: The registered home-bank policy (the fabric's class-level default;
#: the mc harness patches it like any protocol table).
HOME_BANK_TABLE = build_home_bank_table()


def home_state_of(entry: "DirectoryEntry") -> HomeState:
    """Derive the entry's occupancy state for table dispatch."""
    sharers = entry.sharers
    if sharers.overflowed:
        return HomeState.OVERFLOW
    if entry.owner is not None:
        return HomeState.OWNED
    if len(sharers):
        return HomeState.SHARED
    return HomeState.UNCACHED


def guard_bits_of(entry: "DirectoryEntry", requester: "CacheId",
                  peers: bool) -> int:
    """Encode the request's guard context as compiled dispatch bits
    (bit order per :data:`DIR_BIT_FAMILIES`).  ``peers`` is whether any
    other cache is listed -- the caller computes it from the ports it
    is about to scan anyway."""
    bits = 0
    if peers:
        bits |= 1
    if entry.owner == requester:
        bits |= 2
    if entry.sharers.overflowed:
        bits |= 4
    return bits
