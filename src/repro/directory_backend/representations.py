"""Pluggable sharer-set representations for directory entries.

The classic full-map directory (Censier-Feautrier) spends one presence
bit per cache per block -- exact, but the storage grows linearly with
the machine.  The literature's two standard relaxations trade precision
for bits:

* **Limited pointer (Dir-n-B)**: track at most ``n`` exact cache
  pointers; when an ``n+1``-th sharer arrives, set a broadcast bit and
  fall back to probing everyone until a full probe proves the sharer
  count fits the pointers again.
* **Coarse vector**: one presence bit per *region* of ``K`` consecutive
  caches; probes go to every cache of a marked region (a superset of
  the true sharers), and each probe round re-derives the bits exactly
  because every covered cache is probed.

All three live behind one interface so the home-bank table's probe and
refresh actions are representation-blind.  The invariant every
implementation must keep is *conservatism*: the set of caches the
representation admits probing (``listed`` plus, when ``overflowed``,
everyone) is always a superset of the caches that would react to a
snoop.  Under-approximation is the seeded ``directory-narrow-probe``
bug, caught by lint and the model checker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:
    from repro.common.config import TopologyConfig
    from repro.common.types import CacheId

#: Legal values of ``TopologyConfig.directory_entry``.
DIRECTORY_ENTRY_KINDS = ("full-bit-vector", "limited-pointer",
                         "coarse-vector")


class SharerSet:
    """Interface of a directory entry's sharer-set representation.

    ``listed`` is the *tracked* membership the probe-listed action
    scans; ``overflowed`` says the tracking lost precision and only a
    broadcast probe (probe-all) is sound.  ``refresh`` applies the
    outcome of a probe round: ``keep``/``drop`` partition the probed
    caches by whether they still care, and ``complete`` says the round
    covered every port (so a lossy representation may rebuild exactly).

    The set-like aliases (``add``/``discard``/``in``/``len``/``iter``)
    exist so directory state stays scriptable from tests and seeded
    mutations without knowing the representation.
    """

    #: Stable name stamped into results and benchmark payloads.
    kind: str = "abstract"

    def listed(self, cid: "CacheId") -> bool:
        raise NotImplementedError

    @property
    def overflowed(self) -> bool:
        raise NotImplementedError

    def enroll(self, cid: "CacheId") -> None:
        raise NotImplementedError

    def discard(self, cid: "CacheId") -> None:
        raise NotImplementedError

    def refresh(self, keep: "list[CacheId]", drop: "list[CacheId]",
                *, complete: bool) -> None:
        raise NotImplementedError

    def bits_per_block(self, num_caches: int) -> int:
        """Directory storage cost of one entry, in presence bits."""
        raise NotImplementedError

    # -- set-like conveniences ------------------------------------------------

    def add(self, cid: "CacheId") -> None:
        self.enroll(cid)

    def __contains__(self, cid: object) -> bool:
        return self.listed(cid)  # type: ignore[arg-type]

    def __iter__(self) -> "Iterator[CacheId]":
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FullBitVector(set, SharerSet):
    """One presence bit per cache: today's exact directory vector.

    Subclasses ``set`` so every operation is literally the pre-refactor
    ``set[CacheId]`` behavior -- the conformance golden holds this
    representation bit-identical to the inline policy it replaced.
    """

    kind = "full-bit-vector"

    def listed(self, cid: "CacheId") -> bool:
        return cid in self

    @property
    def overflowed(self) -> bool:
        return False

    def enroll(self, cid: "CacheId") -> None:
        set.add(self, cid)

    def refresh(self, keep, drop, *, complete: bool) -> None:
        for cid in keep:
            set.add(self, cid)
        for cid in drop:
            set.discard(self, cid)

    def bits_per_block(self, num_caches: int) -> int:
        return num_caches


class LimitedPointerSet(SharerSet):
    """Dir-n-B: at most ``pointers`` exact cache ids, else broadcast.

    While precise, behaves like the full vector restricted to ``n``
    entries.  The ``n+1``-th enrollment sets the overflow (broadcast)
    bit instead of recording the cache; the home-bank table then probes
    everyone for the block.  A broadcast probe covers every port, so its
    refresh is ``complete`` and rebuilds the pointers exactly --
    collapsing back to precise mode when the survivors fit.
    """

    kind = "limited-pointer"

    def __init__(self, pointers: int,
                 members: "Iterable[CacheId]" = ()) -> None:
        if pointers < 1:
            raise ValueError(f"limited-pointer needs >= 1 pointer, "
                             f"got {pointers}")
        self.pointers = pointers
        self._ptrs: "set[CacheId]" = set(members)
        self._overflowed = len(self._ptrs) > pointers
        if self._overflowed:
            self._clamp()

    def _clamp(self) -> None:
        self._ptrs = set(sorted(self._ptrs)[:self.pointers])

    def listed(self, cid: "CacheId") -> bool:
        return cid in self._ptrs

    @property
    def overflowed(self) -> bool:
        return self._overflowed

    def enroll(self, cid: "CacheId") -> None:
        if cid in self._ptrs:
            return
        if not self._overflowed and len(self._ptrs) < self.pointers:
            self._ptrs.add(cid)
        else:
            # No free pointer: lose precision, remember only that a
            # broadcast is now required.
            self._overflowed = True

    def discard(self, cid: "CacheId") -> None:
        self._ptrs.discard(cid)

    def refresh(self, keep, drop, *, complete: bool) -> None:
        if complete:
            # The probe round covered every port, so ``keep`` is the
            # exact sharer set: rebuild, collapsing out of broadcast
            # mode when it fits the pointers.
            survivors = set(keep)
            self._overflowed = len(survivors) > self.pointers
            self._ptrs = survivors
            if self._overflowed:
                self._clamp()
            return
        for cid in keep:
            self.enroll(cid)
        for cid in drop:
            self.discard(cid)

    def bits_per_block(self, num_caches: int) -> int:
        return self.pointers * max(1, (num_caches - 1).bit_length()) + 1

    def __iter__(self) -> "Iterator[CacheId]":
        return iter(self._ptrs)

    def __len__(self) -> int:
        return len(self._ptrs)

    def __repr__(self) -> str:
        flag = "!" if self._overflowed else ""
        return f"LimitedPointerSet({sorted(self._ptrs)}{flag})"


class CoarseVector(SharerSet):
    """One presence bit per region of ``region_size`` consecutive caches.

    ``listed`` answers per-cache by the region bit, so probe-listed
    reaches every cache of a marked region -- a superset of the true
    sharers, which is exactly what a snooping bus would do restricted
    to those regions.  Because every covered cache is probed each
    round, refresh re-derives the bits exactly from the survivors; the
    representation never enters broadcast mode.
    """

    kind = "coarse-vector"

    def __init__(self, region_size: int,
                 members: "Iterable[CacheId]" = ()) -> None:
        if region_size < 1:
            raise ValueError(f"coarse-vector needs region size >= 1, "
                             f"got {region_size}")
        self.region_size = region_size
        self._regions: set[int] = {cid // region_size for cid in members}

    def _region(self, cid: "CacheId") -> int:
        return cid // self.region_size

    def listed(self, cid: "CacheId") -> bool:
        return self._region(cid) in self._regions

    @property
    def overflowed(self) -> bool:
        return False

    def enroll(self, cid: "CacheId") -> None:
        self._regions.add(self._region(cid))

    def discard(self, cid: "CacheId") -> None:
        # Lossy: clears the whole region.  Only sound when every cache
        # of the region is known not to care (refresh guarantees this;
        # ad-hoc callers accept the imprecision).
        self._regions.discard(self._region(cid))

    def refresh(self, keep, drop, *, complete: bool) -> None:
        # Every marked region's caches were probed this round (listed()
        # admits the whole region), so the survivors determine the bits
        # exactly regardless of ``complete``.
        self._regions = {self._region(cid) for cid in keep}

    def bits_per_block(self, num_caches: int) -> int:
        return -(-num_caches // self.region_size)

    def __iter__(self) -> "Iterator[CacheId]":
        for region in sorted(self._regions):
            base = region * self.region_size
            yield from range(base, base + self.region_size)

    def __len__(self) -> int:
        return len(self._regions) * self.region_size

    def __repr__(self) -> str:
        return f"CoarseVector(K={self.region_size}, " \
               f"regions={sorted(self._regions)})"


def representation_factory(
    topology: "TopologyConfig",
) -> "Callable[[], SharerSet]":
    """Zero-arg constructor for the configured sharer-set kind."""
    kind = topology.directory_entry
    if kind == "full-bit-vector":
        return FullBitVector
    if kind == "limited-pointer":
        pointers = topology.directory_pointers
        return lambda: LimitedPointerSet(pointers)
    if kind == "coarse-vector":
        region = topology.directory_region_size
        return lambda: CoarseVector(region)
    known = ", ".join(DIRECTORY_ENTRY_KINDS)
    raise ValueError(f"unknown directory entry kind {kind!r} "
                     f"(known: {known})")


def bits_per_block(topology: "TopologyConfig", num_caches: int) -> int:
    """Directory storage per block for the configured representation."""
    return representation_factory(topology)().bits_per_block(num_caches)
