"""Producer/consumer sharing (Section B.1).

"One process produces a value, say a variable binding, for another
process, and that process, in turn, reads the value and uses it."
Processors are paired; each pair shares one lock-protected channel atom.
The producer locks the channel, writes the item, and unlocks; the
consumer locks, reads, and unlocks.  Lock contention provides the
ordering (the paper's schemes do not include condition variables; a
consumer that reads an empty slot simply retries, which exercises the
busy-wait machinery).
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.processor import isa
from repro.processor.program import LockStyle, Program
from repro.workloads.base import Atom, layout_for


def producer_consumer(
    config: SystemConfig,
    *,
    items: int = 16,
    item_words: int = 2,
    think_cycles: int = 3,
    lock_style: LockStyle = LockStyle.CACHE_LOCK,
) -> list[Program]:
    """Pair processors (0,1), (2,3), ...; odd counts leave the last
    processor with an empty program."""
    layout = layout_for(config)
    programs: list[Program] = [Program(ops=[], name=f"idle-p{i}")
                               for i in range(config.num_processors)]
    for producer_pid in range(0, config.num_processors - 1, 2):
        consumer_pid = producer_pid + 1
        atom = Atom.allocate(layout, 1 + item_words)
        data = atom.data_words()
        produce: list[isa.Op] = []
        consume: list[isa.Op] = []
        for item in range(items):
            produce.append(isa.lock(atom.lock_word))
            for word in data:
                produce.append(isa.write(word, value=item + 1))
            produce.append(isa.unlock(atom.lock_word, value=item + 1))
            if think_cycles:
                produce.append(isa.compute(think_cycles))

            consume.append(isa.lock(atom.lock_word))
            for word in data:
                consume.append(isa.read(word))
            consume.append(isa.unlock(atom.lock_word, value=item + 1))
            if think_cycles:
                consume.append(isa.compute(think_cycles))
        programs[producer_pid] = Program(produce, name=f"producer-p{producer_pid}")
        programs[consumer_pid] = Program(consume, name=f"consumer-p{consumer_pid}")
    return [p.lowered(lock_style) for p in programs]
