"""Prolog-style AND-parallel execution (Sections A.1, B.1, G.1).

The paper's motivating domain: "we intend to implement Prolog predicates
(procedures) as lightweight processes, thereby generating many medium-
grained, lightweight processes and many synchronization operations."  And
from B.1: "one process produces a value, say a *variable binding*, for
another process, and that process, in turn, reads the value and uses it."

The generator models one parent and ``n-1`` workers:

* the parent pushes goals onto a lock-protected **goal stack** (the
  service-request pattern of B.1);
* workers pop goals, reduce them (compute), and publish **variable
  bindings** into lock-protected binding cells;
* a worker occasionally fails and **backtracks**: it re-locks its binding
  cells, unbinds (writes 0), re-reduces, and rebinds;
* the parent reads every binding back (the consumer side of B.1).

All schedules are resolved at generation time with the config's seed, so
runs are deterministic.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.processor import isa
from repro.processor.isa import Op
from repro.processor.program import Program
from repro.sync.queue import SoftwareQueue
from repro.workloads.base import Atom, layout_for


def prolog_and_parallel(
    config: SystemConfig,
    *,
    goals: int = 9,
    bindings_per_goal: int = 2,
    backtrack_probability: float = 0.25,
    reduce_cycles: int = 6,
    seed: int | None = None,
) -> list[Program]:
    """One parent (processor 0) and ``n-1`` workers reducing goals."""
    n = config.num_processors
    if n < 2:
        raise ValueError("AND-parallelism needs a parent and a worker")
    if not 0.0 <= backtrack_probability <= 1.0:
        raise ValueError("backtrack_probability must be in [0, 1]")
    layout = layout_for(config)
    goal_stack = SoftwareQueue.allocate(layout, capacity=max(goals, 4))
    # One binding-cell atom per goal: the lock word plus the bindings.
    cells = [Atom.allocate(layout, 1 + bindings_per_goal)
             for _ in range(goals)]
    rng = derive_rng(config.seed if seed is None else seed, "prolog")

    parent: list[Op] = []
    workers: list[list[Op]] = [[] for _ in range(n - 1)]

    for goal in range(goals):
        worker = goal % (n - 1)
        cell = cells[goal]
        # Parent enqueues the goal (with a ready section: it still has
        # other goals to prepare while waiting for the stack lock).
        parent += goal_stack.enqueue_ops(goal + 1, ready_work=4)
        # Worker takes the goal and reduces it.
        workers[worker] += goal_stack.dequeue_ops(ready_work=4)
        workers[worker].append(isa.compute(reduce_cycles))
        # Publish the bindings.
        workers[worker].append(isa.lock(cell.lock_word))
        for b, word in enumerate(cell.data_words()):
            workers[worker].append(
                isa.write(word, value=100 * (goal + 1) + b)
            )
        workers[worker].append(isa.unlock(cell.lock_word, value=goal + 1))
        # Occasionally fail and backtrack: unbind, re-reduce, rebind.
        if rng.random() < backtrack_probability:
            workers[worker].append(isa.compute(2))
            workers[worker].append(isa.lock(cell.lock_word))
            for word in cell.data_words():
                workers[worker].append(isa.write(word, value=0))  # unbind
            workers[worker].append(isa.unlock(cell.lock_word, value=0))
            workers[worker].append(isa.compute(reduce_cycles))
            workers[worker].append(isa.lock(cell.lock_word))
            for b, word in enumerate(cell.data_words()):
                workers[worker].append(
                    isa.write(word, value=200 * (goal + 1) + b)
                )
            workers[worker].append(isa.unlock(cell.lock_word, value=goal + 1))

    # The parent consumes every binding (lock, read, unlock).
    for goal, cell in enumerate(cells):
        parent.append(isa.lock(cell.lock_word, ready_work=2))
        for word in cell.data_words():
            parent.append(isa.read(word))
        parent.append(isa.unlock(cell.lock_word, value=goal + 1))

    programs = [Program(parent, name="parent-p0")]
    programs += [Program(ops, name=f"worker-p{i + 1}")
                 for i, ops in enumerate(workers)]
    return programs
