"""The Dubois-Briggs sharing model vs the paper's atom discipline (§D.2).

"The model of sharing under write-in that was introduced by Dubois and
Briggs (1982) fails to appreciate the first two points [a process does
not access an atom until it is unlocked; blocks should be devoted to
atoms], so degrades the performance of write-in."

Two generators produce the *same logical work* -- lock-protected updates
of an atom plus independent per-processor hot data -- under two layouts:

* **disciplined** (the paper): the atom owns its blocks; each processor's
  hot private data lives in its own blocks; nobody touches the atom's
  blocks while it is locked (the lock refusal enforces it anyway);
* **dubois-briggs**: the atom *shares its block* with the other
  processors' hot data, so every private access collides with the locked
  block (false sharing), and the critical-section writes ping-pong the
  block even though the other processors never read the atom itself.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.common.layout import Atom, layout_for
from repro.processor import isa
from repro.processor.isa import Op
from repro.processor.program import LockStyle, Program


def _work(pid: int, rounds: int, atom_lock: int, atom_data: list[int],
          hot_word: int, hot_accesses: int) -> list[Op]:
    ops: list[Op] = []
    for _ in range(rounds):
        ops.append(isa.lock(atom_lock))
        for word in atom_data:
            ops.append(isa.write(word, value=pid + 1))
        ops.append(isa.unlock(atom_lock, value=pid + 1))
        for i in range(hot_accesses):
            if i % 3 == 0:
                ops.append(isa.write(hot_word, value=pid + 1))
            else:
                ops.append(isa.read(hot_word))
    return ops


def disciplined_sharing(
    config: SystemConfig,
    *,
    rounds: int = 5,
    hot_accesses: int = 6,
    lock_style: LockStyle = LockStyle.CACHE_LOCK,
) -> list[Program]:
    """Blocks devoted to the atom; private hot data in private blocks."""
    layout = layout_for(config)
    atom = Atom.allocate(layout, 3)
    programs = []
    for pid in range(config.num_processors):
        hot_word = layout.block()  # own block per processor
        ops = _work(pid, rounds, atom.lock_word, atom.data_words(),
                    hot_word, hot_accesses)
        programs.append(Program(ops, name=f"disciplined-p{pid}").lowered(lock_style))
    return programs


def dubois_briggs_sharing(
    config: SystemConfig,
    *,
    rounds: int = 5,
    hot_accesses: int = 6,
    lock_style: LockStyle = LockStyle.CACHE_LOCK,
) -> list[Program]:
    """The criticized layout: everybody's hot word shares the atom's
    block(s), so unrelated accesses contend with the locked atom."""
    wpb = config.cache.words_per_block
    layout = layout_for(config)
    # Allocate a two-block region: atom at the front, hot words packed in
    # behind it (sharing the atom's blocks as far as capacity allows).
    region = layout.region(2 * wpb)
    atom = Atom(base=region[0], n_words=3)
    programs = []
    for pid in range(config.num_processors):
        hot_word = region[(3 + pid) % len(region)]
        ops = _work(pid, rounds, atom.lock_word, atom.data_words(),
                    hot_word, hot_accesses)
        programs.append(Program(ops, name=f"dubois-p{pid}").lowered(lock_style))
    return programs
