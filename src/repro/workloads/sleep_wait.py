"""Sleep wait implemented over busy wait (Section B.2).

"If the hardware... does not itself implement queuing, then by default
the software must implement it using busy wait.  In this case, a
queue-manager procedure will busy wait for access to software-implemented
queues, and when it gains access to a queue, will insert or delete a
process, as appropriate.  If semaphores are used, they will be part of
the queue descriptor."

The generator models a system of processes blocking on a contended
resource: a process that would wait long *sleeps* -- its processor runs
the queue-manager ops (lock the sleep-queue descriptor, enqueue the
process record, unlock), switches to another process (saving state,
Feature 9), and the releaser later dequeues and wakes it.  The schedule
is resolved at generation time; what the simulator executes is exactly
the memory-reference pattern such a system produces, dominated by
busy-wait traffic on the queue descriptors -- "the primary importance of
efficient waiting" (Section E.4).
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.processor import isa
from repro.processor.isa import Op
from repro.processor.program import Program
from repro.sync.queue import SoftwareQueue
from repro.workloads.base import Atom, layout_for


def sleep_wait(
    config: SystemConfig,
    *,
    blocking_sections: int = 4,
    resource_hold_cycles: int = 20,
    state_blocks: int = 2,
    ready_queue_capacity: int = 16,
) -> list[Program]:
    """Processors contend for one long-held resource; losers sleep.

    Each round, processor ``r = round % n`` takes the resource; every
    other processor, instead of busy-waiting through the long hold,
    enqueues itself on the sleep queue (a lock-protected soft atom),
    saves its state, and later gets dequeued onto the ready queue by the
    releaser and resumes (restoring state).
    """
    n = config.num_processors
    if n < 2:
        raise ValueError("sleep wait needs contention: >= 2 processors")
    layout = layout_for(config)
    resource = Atom.allocate(layout, 2)
    sleep_queue = SoftwareQueue.allocate(layout, capacity=ready_queue_capacity)
    ready_queue = SoftwareQueue.allocate(layout, capacity=ready_queue_capacity)
    state = [[layout.block() for _ in range(state_blocks)] for _ in range(n)]

    ops: list[list[Op]] = [[] for _ in range(n)]
    for round_no in range(blocking_sections):
        holder = round_no % n
        # The holder takes the resource and works.
        ops[holder].append(isa.lock(resource.lock_word))
        ops[holder].append(isa.write(resource.data_words()[0],
                                     value=holder + 1))
        # Sleepers: enqueue on the sleep queue, save state, "switch out".
        sleepers = [p for p in range(n) if p != holder]
        for sleeper in sleepers:
            ops[sleeper] += sleep_queue.enqueue_ops(sleeper + 1)
            for block in state[sleeper]:
                ops[sleeper].append(isa.save_block(block, value=round_no + 1))
        # The holder finishes, releases, and wakes every sleeper: dequeue
        # from the sleep queue, enqueue on the ready queue.
        ops[holder].append(isa.compute(resource_hold_cycles))
        ops[holder].append(isa.unlock(resource.lock_word, value=0))
        for _ in sleepers:
            ops[holder] += sleep_queue.dequeue_ops()
            ops[holder] += ready_queue.enqueue_ops(round_no + 1)
        # Sleepers wake: dequeue themselves from the ready queue and
        # restore state (reads of their saved context).
        for sleeper in sleepers:
            ops[sleeper] += ready_queue.dequeue_ops()
            for block in state[sleeper]:
                ops[sleeper].append(isa.read(block))
    return [Program(ops[p], name=f"sleep-wait-p{p}") for p in range(n)]
