"""Reference-trace input/output.

A simple line-oriented trace format so externally captured (or hand-
written) reference streams can drive the simulator, and simulator
workloads can be exported for other tools:

    # comment
    P0 R 0x40          processor 0 reads word 0x40
    P1 W 0x44 7        processor 1 writes value 7
    P0 L 0x80          lock   (cache-state lock instruction)
    P0 U 0x80 1        unlock (final write, value 1)
    P2 C 12            compute 12 cycles
    P0 S 0x100 3       save-block (write-without-fetch), value 3
    P1 T 0x80          test-and-set acquire (spin)
    P1 F 0x80          free / release (write 0)

Addresses may be decimal or 0x-hex.  Each processor's lines form its
program, in file order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from repro.common.errors import ProgramError
from repro.processor import isa
from repro.processor.isa import Op, OpKind
from repro.processor.program import Program

_OP_CODES = {
    "R": OpKind.READ,
    "W": OpKind.WRITE,
    "L": OpKind.LOCK,
    "U": OpKind.UNLOCK,
    "C": OpKind.COMPUTE,
    "S": OpKind.SAVE_BLOCK,
    "T": OpKind.TAS_ACQUIRE,
    "F": OpKind.RELEASE,
}

_CODE_OF = {v: k for k, v in _OP_CODES.items()}


def _parse_int(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


def parse_trace_line(line: str, line_no: int) -> tuple[int, Op] | None:
    """Parse one line; returns (processor id, op) or None for blanks."""
    stripped = line.split("#", 1)[0].strip()
    if not stripped:
        return None
    tokens = stripped.split()
    if len(tokens) < 2 or not tokens[0].upper().startswith("P"):
        raise ProgramError(f"trace line {line_no}: malformed: {line!r}")
    try:
        pid = int(tokens[0][1:])
    except ValueError:
        raise ProgramError(f"trace line {line_no}: bad processor {tokens[0]!r}")
    code = tokens[1].upper()
    if code not in _OP_CODES:
        raise ProgramError(f"trace line {line_no}: unknown op {code!r}")
    kind = _OP_CODES[code]
    if kind is OpKind.COMPUTE:
        if len(tokens) != 3:
            raise ProgramError(f"trace line {line_no}: C needs a cycle count")
        return pid, isa.compute(_parse_int(tokens[2]))
    if len(tokens) < 3:
        raise ProgramError(f"trace line {line_no}: {code} needs an address")
    addr = _parse_int(tokens[2])
    value = _parse_int(tokens[3]) if len(tokens) > 3 else 1
    if kind is OpKind.READ:
        return pid, isa.read(addr)
    if kind is OpKind.WRITE:
        return pid, isa.write(addr, value=value)
    if kind is OpKind.LOCK:
        return pid, isa.lock(addr)
    if kind is OpKind.UNLOCK:
        return pid, isa.unlock(addr, value=value)
    if kind is OpKind.SAVE_BLOCK:
        return pid, isa.save_block(addr, value=value)
    if kind is OpKind.TAS_ACQUIRE:
        return pid, isa.tas_acquire(addr, token=value)
    if kind is OpKind.RELEASE:
        return pid, isa.release(addr)
    raise ProgramError(f"trace line {line_no}: unhandled op {code}")


def load_trace(source: TextIO | str | Path, *,
               num_processors: int | None = None) -> list[Program]:
    """Load a trace into one program per processor.

    ``num_processors`` pads with empty programs (and validates the trace
    does not reference higher processor ids).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    per_pid: dict[int, list[Op]] = {}
    for line_no, line in enumerate(lines, start=1):
        parsed = parse_trace_line(line, line_no)
        if parsed is None:
            continue
        pid, op = parsed
        per_pid.setdefault(pid, []).append(op)
    max_pid = max(per_pid, default=-1)
    count = num_processors if num_processors is not None else max_pid + 1
    if max_pid >= count:
        raise ProgramError(
            f"trace references processor {max_pid} but only "
            f"{count} processors requested"
        )
    return [
        Program(per_pid.get(pid, []), name=f"trace-p{pid}")
        for pid in range(count)
    ]


def dump_trace(programs: Iterable[Program]) -> str:
    """Render programs back into trace text (round-trips with
    :func:`load_trace` for the supported op kinds)."""
    lines: list[str] = []
    for pid, program in enumerate(programs):
        for op in program.ops:
            code = _CODE_OF.get(op.kind)
            if code is None:
                raise ProgramError(
                    f"op kind {op.kind} has no trace encoding"
                )
            if op.kind is OpKind.COMPUTE:
                lines.append(f"P{pid} C {op.cycles}")
            elif op.kind is OpKind.READ:
                lines.append(f"P{pid} R {op.addr:#x}")
            elif op.kind in (OpKind.LOCK, OpKind.RELEASE, OpKind.TAS_ACQUIRE):
                lines.append(f"P{pid} {code} {op.addr:#x}")
            else:
                lines.append(f"P{pid} {code} {op.addr:#x} {op.value}")
    return "\n".join(lines) + "\n"
