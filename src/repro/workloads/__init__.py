"""Workload generators: one per scenario the paper motivates.

Naming: this module exports importable *underscore* names
(``scale_probe``); the CLI-facing registry keys the same workloads
under *hyphenated* names (``scale-probe``).
:func:`repro.workloads.registry.canonical_workload_name` accepts either
spelling, and ``tests/workloads/test_registry_matrix.py`` asserts the
two namespaces stay reconciled.
"""

from repro.workloads.base import Atom, Layout, layout_for
from repro.workloads.lock_contention import lock_contention, uncontended_locks
from repro.workloads.multiprogramming import (
    multiprogram,
    multiprogrammed_contention,
)
from repro.workloads.process_switch import process_switch
from repro.workloads.producer_consumer import producer_consumer
from repro.workloads.prolog import prolog_and_parallel
from repro.workloads.request_queue import request_queue
from repro.workloads.sharing import (interleaved_sharing, migration,
                                     scale_probe)
from repro.workloads.sleep_wait import sleep_wait
from repro.workloads.synthetic import SmithParameters, smith_stream
from repro.workloads.trace import dump_trace, load_trace

__all__ = [
    "Atom",
    "Layout",
    "SmithParameters",
    "dump_trace",
    "interleaved_sharing",
    "layout_for",
    "load_trace",
    "lock_contention",
    "migration",
    "multiprogram",
    "multiprogrammed_contention",
    "process_switch",
    "producer_consumer",
    "prolog_and_parallel",
    "request_queue",
    "scale_probe",
    "sleep_wait",
    "smith_stream",
    "uncontended_locks",
]
