"""Process-switch state saving (Feature 9).

"In the Aquarius system... we anticipate frequent process switching,
hence the switching must be very efficient."  Saving state writes *all*
of the data in each state block, so under write-without-fetch the blocks
need not be fetched on the (certain) write misses.  The comparison
workload writes the same state word-by-word, paying a fetch per block.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.processor import isa
from repro.processor.program import Program
from repro.workloads.base import layout_for


def process_switch(
    config: SystemConfig,
    *,
    switches: int = 8,
    state_blocks: int = 4,
    compute_between: int = 10,
    use_write_no_fetch: bool = True,
) -> list[Program]:
    """Each processor alternately computes and saves its process state."""
    layout = layout_for(config)
    wpb = config.cache.words_per_block
    programs: list[Program] = []
    for pid in range(config.num_processors):
        # Fresh state blocks per switch: a saved context goes to a new
        # frame, guaranteeing write misses (the Feature-9 case).
        ops: list[isa.Op] = []
        for switch in range(switches):
            ops.append(isa.compute(compute_between))
            for _ in range(state_blocks):
                block = layout.block()
                if use_write_no_fetch:
                    ops.append(isa.save_block(block, value=pid + 1))
                else:
                    for offset in range(wpb):
                        ops.append(isa.write(block + offset, value=pid + 1))
        programs.append(Program(ops, name=f"switch-p{pid}"))
    return programs
