"""Named workload registry shared by the CLI and :mod:`repro.api`.

Each entry maps a CLI-friendly name to a builder taking the system
config and a lock style (workloads that generate explicit lock/unlock
ops honor it; reference-stream workloads ignore it).  Protocol-dependent
defaults (block size, lock style) live here too so every entry point
resolves them identically.
"""

from __future__ import annotations

from typing import Callable

from repro.common.config import SystemConfig
from repro.processor.program import LockStyle, Program
from repro.workloads import (
    interleaved_sharing,
    lock_contention,
    migration,
    process_switch,
    producer_consumer,
    prolog_and_parallel,
    request_queue,
    scale_probe,
    sleep_wait,
    smith_stream,
)


def _lowered(programs, style: LockStyle):
    return [p.lowered(style) for p in programs]


WORKLOADS: dict[str, Callable[[SystemConfig, LockStyle], list[Program]]] = {
    "lock-contention": lambda cfg, style: lock_contention(cfg, lock_style=style),
    "producer-consumer": lambda cfg, style: producer_consumer(cfg, lock_style=style),
    "request-queue": lambda cfg, style: request_queue(cfg, lock_style=style),
    "sharing": lambda cfg, style: interleaved_sharing(cfg),
    "scale-probe": lambda cfg, style: scale_probe(cfg),
    "migration": lambda cfg, style: migration(cfg),
    "process-switch": lambda cfg, style: process_switch(cfg),
    "smith": lambda cfg, style: smith_stream(cfg),
    "prolog": lambda cfg, style: _lowered(prolog_and_parallel(cfg), style),
    "sleep-wait": lambda cfg, style: _lowered(sleep_wait(cfg), style),
}


def default_words_per_block(protocol: str) -> int:
    """The paper's four-word blocks, except Rudolph-Segall's one-word."""
    return 1 if protocol == "rudolph-segall" else 4


def default_lock_style(protocol: str) -> LockStyle:
    """Cache-lock on the proposal, test-and-test-and-set elsewhere."""
    return (LockStyle.CACHE_LOCK if protocol == "bitar-despain"
            else LockStyle.TTAS)


def build_workload(name: str, config: SystemConfig,
                   style: LockStyle | None = None) -> list[Program]:
    """Instantiate a registered workload for ``config``."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r} (known: {known})") from None
    return builder(config, style or default_lock_style(config.protocol))
