"""Named workload registry shared by the CLI and :mod:`repro.api`.

Each entry maps a CLI-friendly name to a builder taking the system
config and a lock style.  Workloads that generate explicit lock/unlock
ops honor the style; *style-blind* reference-stream workloads
(:data:`STYLE_BLIND_WORKLOADS`) contain no synchronization at all, and
passing an explicit style to one raises a
:class:`~repro.common.errors.LockStyleIgnoredWarning` instead of being
silently dropped.  Protocol-dependent defaults (block size, lock style)
live here too so every entry point resolves them identically.

Scenario-built entries (``scenario:*``) compile declarative
:mod:`repro.scenario` specs to programs at build time; they are ordinary
registry citizens, so the CLI, :mod:`repro.api`, and sweep worker
processes pick them up with no special casing.
"""

from __future__ import annotations

import warnings
from typing import Callable

from repro.common.config import SystemConfig
from repro.common.errors import LockStyleIgnoredWarning
from repro.processor.program import LockStyle, Program
from repro.scenario.compile import compile_scenario
from repro.scenario.library import SCENARIOS
from repro.workloads import (
    interleaved_sharing,
    lock_contention,
    migration,
    process_switch,
    producer_consumer,
    prolog_and_parallel,
    request_queue,
    scale_probe,
    sleep_wait,
    smith_stream,
)


def _lowered(programs, style: LockStyle):
    return [p.lowered(style) for p in programs]


WORKLOADS: dict[str, Callable[[SystemConfig, LockStyle], list[Program]]] = {
    "lock-contention": lambda cfg, style: lock_contention(cfg, lock_style=style),
    "producer-consumer": lambda cfg, style: producer_consumer(cfg, lock_style=style),
    "request-queue": lambda cfg, style: request_queue(cfg, lock_style=style),
    "sharing": lambda cfg, style: interleaved_sharing(cfg),
    "scale-probe": lambda cfg, style: scale_probe(cfg),
    "migration": lambda cfg, style: migration(cfg),
    "process-switch": lambda cfg, style: process_switch(cfg),
    "smith": lambda cfg, style: smith_stream(cfg),
    "prolog": lambda cfg, style: _lowered(prolog_and_parallel(cfg), style),
    "sleep-wait": lambda cfg, style: _lowered(sleep_wait(cfg), style),
}

#: Reference-stream workloads that contain no lock/unlock ops: a lock
#: style cannot change what they generate.
STYLE_BLIND_WORKLOADS = frozenset(
    {"sharing", "scale-probe", "migration", "process-switch", "smith"})


def _scenario_builder(name: str):
    def build(cfg: SystemConfig, style: LockStyle) -> list[Program]:
        return compile_scenario(SCENARIOS[name](), cfg, lock_style=style)
    return build


# Scenario-built twins of the ported workloads: bit-identical programs,
# built from the declarative specs instead of the generator functions.
# Registered at import time so CLI choices and sweep workers see them.
for _name in sorted(SCENARIOS):
    WORKLOADS[f"scenario:{_name}"] = _scenario_builder(_name)


def default_words_per_block(protocol: str) -> int:
    """The paper's four-word blocks, except Rudolph-Segall's one-word."""
    return 1 if protocol == "rudolph-segall" else 4


def default_lock_style(protocol: str) -> LockStyle:
    """Cache-lock on the proposal, test-and-test-and-set elsewhere."""
    return (LockStyle.CACHE_LOCK if protocol == "bitar-despain"
            else LockStyle.TTAS)


def canonical_workload_name(name: str) -> str:
    """Resolve ``name`` to its registry key.

    Registry keys are hyphenated (``scale-probe``) while the Python API
    exports the same workloads under importable underscore names
    (``scale_probe``); accept either spelling so the two namespaces
    cannot drift apart for callers.  Raises ``KeyError`` listing the
    valid names for anything else.
    """
    if name in WORKLOADS:
        return name
    hyphenated = name.replace("_", "-")
    if hyphenated in WORKLOADS:
        return hyphenated
    known = ", ".join(sorted(WORKLOADS))
    raise KeyError(f"unknown workload {name!r} (known: {known})")


def effective_lock_style(name: str, protocol: str,
                         style: LockStyle | None = None) -> LockStyle | None:
    """The lock style a run of ``name`` actually uses.

    ``None`` for style-blind workloads (there are no locks to style);
    otherwise the explicit ``style``, defaulted per protocol.  Unknown
    names fall through to the styled path so result stamping never
    raises.
    """
    try:
        name = canonical_workload_name(name)
    except KeyError:
        pass
    if name in STYLE_BLIND_WORKLOADS:
        return None
    return style or default_lock_style(protocol)


def build_workload(name: str, config: SystemConfig,
                   style: LockStyle | None = None) -> list[Program]:
    """Instantiate a registered workload for ``config``.

    Accepts hyphenated or underscore names.  An explicit ``style`` on a
    style-blind workload warns (:class:`LockStyleIgnoredWarning`) --
    the request is misleading, not wrong, so the run proceeds.
    """
    name = canonical_workload_name(name)
    if style is not None and name in STYLE_BLIND_WORKLOADS:
        warnings.warn(
            f"workload {name!r} is a reference stream with no lock/unlock "
            f"operations; the requested lock style {style.value!r} has no "
            f"effect", LockStyleIgnoredWarning, stacklevel=2)
    builder = WORKLOADS[name]
    return builder(config, style or default_lock_style(config.protocol))
