"""Interleaved read/write sharing of unlocked data (Sections C.3, D).

Random reference streams over a mix of private and shared blocks, with a
configurable write fraction -- the regime where the write-in vs
write-through-for-shared-data debate of Section D plays out, and the
Dubois & Briggs style of sharing model the paper criticizes (interleaved
accesses with no atom/block discipline).
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.common.rng import derive_rng, zipf_weights
from repro.processor import isa
from repro.processor.program import Program
from repro.workloads.base import layout_for


def interleaved_sharing(
    config: SystemConfig,
    *,
    references: int = 200,
    shared_blocks: int = 8,
    private_blocks: int = 16,
    write_fraction: float = 0.35,
    shared_fraction: float = 0.3,
    zipf_skew: float = 0.8,
    seed: int | None = None,
) -> list[Program]:
    """Each processor issues ``references`` random reads/writes.

    ``write_fraction`` defaults to 0.35, the upper bound the paper quotes
    from Smith (1985) for the frequency of writes.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be in [0, 1]")
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError("shared_fraction must be in [0, 1]")
    layout = layout_for(config)
    wpb = config.cache.words_per_block
    shared = layout.blocks(shared_blocks)
    weights = zipf_weights(len(shared), zipf_skew) if shared else []
    programs: list[Program] = []
    base_seed = config.seed if seed is None else seed
    for pid in range(config.num_processors):
        rng = derive_rng(base_seed, "sharing", pid)
        private = layout.blocks(private_blocks)
        ops: list[isa.Op] = []
        for _ in range(references):
            if shared and rng.random() < shared_fraction:
                block = rng.choices(shared, weights=weights, k=1)[0]
            else:
                block = rng.choice(private)
            addr = block + rng.randrange(wpb)
            if rng.random() < write_fraction:
                ops.append(isa.write(addr, value=pid + 1))
            else:
                ops.append(isa.read(addr))
        programs.append(Program(ops, name=f"sharing-p{pid}"))
    return programs


def scale_probe(
    config: SystemConfig,
    *,
    total_references: int = 4096,
    shared_blocks: int = 32,
    private_blocks: int = 2,
    write_fraction: float = 0.35,
    shared_fraction: float = 0.5,
    zipf_skew: float = 0.8,
    seed: int | None = None,
) -> list[Program]:
    """Constant-total-work sharing stream for interconnect-scale sweeps.

    ``total_references`` is divided across the processors, so sweeping
    the processor count holds the offered load fixed and measures how
    the *fabric* copes with more snoopers -- the regime of the paper's
    Section A.2 scalability discussion.  (A per-processor stream like
    :func:`interleaved_sharing` instead grows the workload with N, which
    conflates fabric cost with offered load.)
    """
    per = max(2, total_references // max(1, config.num_processors))
    return interleaved_sharing(
        config,
        references=per,
        shared_blocks=shared_blocks,
        private_blocks=private_blocks,
        write_fraction=write_fraction,
        shared_fraction=shared_fraction,
        zipf_skew=zipf_skew,
        seed=seed,
    )


def migration(
    config: SystemConfig,
    *,
    working_set_blocks: int = 8,
    passes: int = 3,
    write_fraction: float = 0.4,
    seed: int | None = None,
) -> list[Program]:
    """One logical process's working set touched by each processor in
    turn -- 'one process on two different processors (due to migration)
    accesses the same writable, shared or unshared, data' (Section C.3)."""
    layout = layout_for(config)
    wpb = config.cache.words_per_block
    blocks = layout.blocks(working_set_blocks)
    base_seed = config.seed if seed is None else seed
    programs: list[Program] = []
    for pid in range(config.num_processors):
        rng = derive_rng(base_seed, "migration", pid)
        ops: list[isa.Op] = []
        # Stagger so processors run roughly one after another: the process
        # "migrates" across caches.
        if pid:
            ops.append(isa.compute(pid * working_set_blocks * wpb * 4))
        for _ in range(passes):
            for block in blocks:
                for offset in range(wpb):
                    if rng.random() < write_fraction:
                        ops.append(isa.write(block + offset, value=pid + 1))
                    else:
                        ops.append(isa.read(block + offset))
        programs.append(Program(ops, name=f"migration-p{pid}"))
    return programs
