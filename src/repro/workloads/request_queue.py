"""Service-request queues (Sections B.1, B.2, E.4).

"One process leaves a service request for another process in the latter's
request queue" -- e.g. a program interpreter sending work to a floating-
point or I/O processor (the Aquarius organization, Figure 11).  The queue
descriptor is a lock-protected atom; clients lock it to insert, the
server locks it to drain.  This is the second reason for busy wait: the
software queues that implement sleep wait are themselves guarded by
busy-wait locks, and "there may be quite a few processes that access each
queue", generating high contention.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.processor import isa
from repro.processor.program import LockStyle, Program
from repro.workloads.base import Atom, layout_for


def request_queue(
    config: SystemConfig,
    *,
    servers: int = 1,
    requests_per_client: int = 6,
    descriptor_words: int = 4,
    service_cycles: int = 8,
    lock_style: LockStyle = LockStyle.CACHE_LOCK,
) -> list[Program]:
    """Processors 0..servers-1 are servers; the rest are clients that
    round-robin their requests over the servers' queues."""
    if servers >= config.num_processors:
        raise ValueError("need at least one client processor")
    layout = layout_for(config)
    queues = [Atom.allocate(layout, descriptor_words) for _ in range(servers)]
    n_clients = config.num_processors - servers
    total_requests = n_clients * requests_per_client
    # Requests per server queue (clients round-robin by request index).
    per_queue = [0] * servers
    for client in range(n_clients):
        for r in range(requests_per_client):
            per_queue[(client + r) % servers] += 1

    programs: list[Program] = []
    for server in range(servers):
        atom = queues[server]
        ops: list[isa.Op] = []
        for _ in range(per_queue[server]):
            ops.append(isa.lock(atom.lock_word))
            for word in atom.data_words():
                ops.append(isa.read(word))  # take the request out
            ops.append(isa.unlock(atom.lock_word, value=0))
            ops.append(isa.compute(service_cycles))  # perform the service
        programs.append(Program(ops, name=f"server-p{server}"))
    for client in range(n_clients):
        pid = servers + client
        ops = []
        for r in range(requests_per_client):
            atom = queues[(client + r) % servers]
            ops.append(isa.lock(atom.lock_word))
            for word in atom.data_words():
                ops.append(isa.write(word, value=pid * 100 + r))
            ops.append(isa.unlock(atom.lock_word, value=pid * 100 + r))
            ops.append(isa.compute(2))
        programs.append(Program(ops, name=f"client-p{pid}"))
    return [p.lowered(lock_style) for p in programs]
