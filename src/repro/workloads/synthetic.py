"""Smith-parameterized synthetic reference streams.

The paper's quantitative estimates (Feature 3's 0.2%-1.2% write-hit-to-
clean frequency; the <1/n traffic bounds of Features 4/5) are derived in
Bitar (1985) from A.J. Smith's trace statistics.  The traces themselves
are not available, so this generator produces streams matching the
published aggregates: a target miss ratio (via working-set size and
re-reference locality), a write fraction (Smith 1985: up to 35%), and a
run length of consecutive writes to a block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.processor import isa
from repro.processor.program import Program
from repro.workloads.base import layout_for


@dataclass(frozen=True)
class SmithParameters:
    """Aggregate statistics the stream is tuned to."""

    write_fraction: float = 0.35
    #: Probability that a reference leaves the current locality (drives the
    #: miss ratio together with the working-set size).
    locality_escape: float = 0.05
    working_set_blocks: int = 32
    #: Mean consecutive references to the same block before moving on.
    run_length: float = 3.0


def smith_stream(
    config: SystemConfig,
    *,
    references: int = 500,
    params: SmithParameters = SmithParameters(),
    seed: int | None = None,
) -> list[Program]:
    """Private-data streams (no sharing): the regime of Smith's uniprocessor
    traces, as used for the Feature-3 frequency estimate."""
    layout = layout_for(config)
    wpb = config.cache.words_per_block
    base_seed = config.seed if seed is None else seed
    programs: list[Program] = []
    for pid in range(config.num_processors):
        rng = derive_rng(base_seed, "smith", pid)
        working_set = layout.blocks(params.working_set_blocks)
        cold = layout.blocks(max(4, params.working_set_blocks))
        current = rng.choice(working_set)
        ops: list[isa.Op] = []
        for _ in range(references):
            if rng.random() < 1.0 / max(params.run_length, 1.0):
                if rng.random() < params.locality_escape:
                    # Leave the locality: rotate a cold block in.
                    current = rng.choice(cold)
                    cold[cold.index(current)] = rng.choice(working_set)
                else:
                    current = rng.choice(working_set)
            addr = current + rng.randrange(wpb)
            if rng.random() < params.write_fraction:
                ops.append(isa.write(addr, value=pid + 1))
            else:
                ops.append(isa.read(addr))
        programs.append(Program(ops, name=f"smith-p{pid}"))
    return programs
