"""Workload-generation helpers.

The layout primitives live in :mod:`repro.common.layout` (the
synchronization library uses them too); this module re-exports them for
the workload generators.
"""

from repro.common.layout import Atom, Layout, layout_for

__all__ = ["Atom", "Layout", "layout_for"]
