"""Multiprogramming: process switching with state saves.

Two of the paper's points meet here:

* Feature 9 -- "in saving state at a process switch... the compiler must
  know when a processor will write all of the data in a block": every
  switch writes the outgoing process's state blocks with
  write-without-fetch;
* Section E.3 -- "it is important to preclude the switching of processes
  while a lock is held": the scheduler never switches inside a
  lock/unlock region.

The schedule is built at generation time (deterministic round-robin with
an op quantum), producing one merged program per processor.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import SystemConfig
from repro.common.errors import ProgramError
from repro.processor import isa
from repro.processor.isa import Op, OpKind
from repro.processor.program import Program
from repro.workloads.base import Layout, layout_for


def _lock_regions(ops: list[Op]) -> list[bool]:
    """For each op index, whether a lock is held *after* executing it."""
    held: set[int] = set()
    result = []
    for op in ops:
        if op.kind is OpKind.LOCK:
            held.add(op.addr)  # type: ignore[arg-type]
        elif op.kind is OpKind.UNLOCK:
            held.discard(op.addr)  # type: ignore[arg-type]
        result.append(bool(held))
    return result


def multiprogram(
    processes: list[Program],
    *,
    quantum_ops: int = 6,
    state_blocks: int = 2,
    layout: Layout,
    use_write_no_fetch: bool = True,
    words_per_block: int = 4,
) -> Program:
    """Interleave ``processes`` on one processor with round-robin
    scheduling, inserting a state save at every switch.

    Switches happen at op boundaries once the quantum is consumed, but
    never while the outgoing process holds a lock -- the region runs to
    its unlock first.
    """
    if not processes:
        raise ProgramError("need at least one process")
    # Per-process state-save region (fresh context area per process).
    state_bases = [
        [layout.block() for _ in range(state_blocks)] for _ in processes
    ]
    cursors = [0] * len(processes)
    holding = [_lock_regions(p.ops) for p in processes]
    merged: list[Op] = []
    current = 0
    while any(cursors[i] < len(processes[i].ops) for i in range(len(processes))):
        program = processes[current]
        if cursors[current] >= len(program.ops):
            current = (current + 1) % len(processes)
            continue
        consumed = 0
        idx = cursors[current]
        while idx < len(program.ops):
            merged.append(replace(program.ops[idx]))
            idx += 1
            consumed += 1
            # Switch once the quantum is consumed -- but never while the
            # process still holds a lock (Section E.3).
            if consumed >= quantum_ops and not holding[current][idx - 1]:
                break
        cursors[current] = idx
        # Context switch: save the outgoing process's state.
        if any(cursors[i] < len(processes[i].ops)
               for i in range(len(processes))):
            for block in state_bases[current]:
                if use_write_no_fetch:
                    merged.append(isa.save_block(block, value=current + 1))
                else:
                    for offset in range(words_per_block):
                        merged.append(isa.write(block + offset,
                                                value=current + 1))
            current = (current + 1) % len(processes)
    return Program(merged, name="multiprogrammed")


def multiprogrammed_contention(
    config: SystemConfig,
    *,
    processes_per_cpu: int = 2,
    rounds: int = 3,
    quantum_ops: int = 5,
    state_blocks: int = 2,
    use_write_no_fetch: bool = True,
) -> list[Program]:
    """Each processor multiprograms several lock-using processes over one
    shared atom -- frequent switching, never inside a critical section."""
    from repro.workloads.base import Atom

    layout = layout_for(config)
    atom = Atom.allocate(layout, 4)
    programs = []
    for pid in range(config.num_processors):
        processes = []
        for proc_no in range(processes_per_cpu):
            ops: list[isa.Op] = []
            for _ in range(rounds):
                ops.append(isa.lock(atom.lock_word))
                for word in atom.data_words():
                    ops.append(isa.write(word, value=pid * 10 + proc_no + 1))
                ops.append(isa.unlock(atom.lock_word))
                ops.append(isa.compute(3))
            processes.append(Program(ops, name=f"p{pid}.proc{proc_no}"))
        merged = multiprogram(
            processes,
            quantum_ops=quantum_ops,
            state_blocks=state_blocks,
            layout=layout,
            use_write_no_fetch=use_write_no_fetch,
            words_per_block=config.cache.words_per_block,
        )
        programs.append(merged)
    return programs
