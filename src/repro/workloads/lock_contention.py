"""Lock-contention microbenchmark (Sections E.3/E.4).

``n`` processors repeatedly acquire one lock, execute a critical section
(a few reads and writes to the atom, plus optional compute), and release.
This is the workload behind the busy-wait benches: under the proposal,
waiting generates *zero* bus transactions; under test-and-set it
generates one failed RMW per retry.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.processor import isa
from repro.processor.program import LockStyle, Program
from repro.workloads.base import Atom, layout_for


def lock_contention(
    config: SystemConfig,
    *,
    rounds: int = 8,
    critical_reads: int = 1,
    critical_writes: int = 2,
    think_cycles: int = 4,
    atom_words: int = 4,
    lock_style: LockStyle = LockStyle.CACHE_LOCK,
    ready_work: int = 0,
) -> list[Program]:
    """One shared atom, every processor loops lock/работа/unlock."""
    layout = layout_for(config)
    atom = Atom.allocate(layout, atom_words)
    data = atom.data_words()
    programs: list[Program] = []
    for pid in range(config.num_processors):
        ops: list[isa.Op] = []
        for round_no in range(rounds):
            ops.append(isa.lock(atom.lock_word, ready_work=ready_work))
            for i in range(critical_reads):
                ops.append(isa.read(data[i % len(data)] if data else atom.lock_word))
            for i in range(critical_writes):
                target = data[i % len(data)] if data else atom.lock_word
                ops.append(isa.write(target, value=pid + 1))
            # The unlock doubles as the final write to the atom (Figure 8).
            ops.append(isa.unlock(atom.lock_word, value=pid + 1))
            if think_cycles:
                ops.append(isa.compute(think_cycles))
        program = Program(ops=ops, name=f"lock-contention-p{pid}")
        programs.append(program.lowered(lock_style))
    return programs


def uncontended_locks(
    config: SystemConfig,
    *,
    rounds: int = 8,
    atom_words: int = 4,
    lock_style: LockStyle = LockStyle.CACHE_LOCK,
) -> list[Program]:
    """Each processor locks its *own* atom: the zero-time locking case of
    Section E.3 (no contention, no waiting)."""
    layout = layout_for(config)
    programs: list[Program] = []
    for pid in range(config.num_processors):
        atom = Atom.allocate(layout, atom_words)
        data = atom.data_words()
        ops: list[isa.Op] = []
        for _ in range(rounds):
            ops.append(isa.lock(atom.lock_word))
            for word in data:
                ops.append(isa.write(word, value=pid + 1))
            ops.append(isa.unlock(atom.lock_word, value=pid + 1))
        program = Program(ops=ops, name=f"uncontended-p{pid}")
        programs.append(program.lowered(lock_style))
    return programs
