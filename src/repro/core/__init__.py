"""The paper's primary contribution: the lock-integrated protocol."""

from repro.core.lock_protocol import BitarDespainProtocol

__all__ = ["BitarDespainProtocol"]
