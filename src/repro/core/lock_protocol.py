"""The paper's proposed protocol (Sections E and F, Table 1 last column).

Eight states (Section E.1), cache-state locking in zero time (E.3, the
``lock-in-place`` action), efficient busy wait via the lock-waiter state
and busy-wait register (E.4, the ``refuse-lock`` action and the
``won-wait`` guard), dynamic fetch-for-write on read miss (Figure 1, the
``unshared`` guard -- Feature 5 ``D``), no flush on cache-to-cache
transfer with status carried along (Feature 7 ``NF,S``),
last-fetcher-becomes-source (Feature 8 ``LRU,MEM``), and
write-without-fetch (Feature 9, ``bus:write-no-fetch``).

A lock whose block was purged spills its lock tag to memory (E.3); the
``mem-owner``/``mem-waiter`` guards on the fill rows re-establish the
in-cache lock state when the owner touches the block again.  The only
procedural remnant on top of the table is the multi-phase unlock of a
spilled lock: refetch with lock, then apply the final write and release
(the :meth:`~BitarDespainProtocol.after_fill` override).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.state import CacheState
from repro.processor.isa import OpKind
from repro.protocols.base import NeedBus
from repro.protocols.features import (
    DirectoryDuality,
    FlushPolicy,
    ProtocolFeatures,
    ReadSourcePolicy,
    SharingDetermination,
)
from repro.protocols.table import Event, TableProtocol, TransitionTable, rule
from repro.bus.transaction import BusOp
from repro.sim.events import EventKind

if TYPE_CHECKING:
    from repro.cache.cache import PendingAccess
    from repro.cache.line import CacheLine

_FEATURES = ProtocolFeatures(
    name="Our proposal (Bitar & Despain)",
    citation="Bitar, Despain 1986",
    year=1986,
    distributed_state="RWLDS",
    directory=DirectoryDuality.NON_IDENTICAL_DUAL,
    bus_invalidate_signal=True,
    fetch_for_write_on_read_miss=SharingDetermination.DYNAMIC,
    atomic_rmw=True,
    flush_policy=FlushPolicy.NO_FLUSH_WITH_STATUS,
    read_source_policy=ReadSourcePolicy.LRU,
    write_without_fetch=True,
    efficient_busy_wait=True,
    state_roles={
        CacheState.INVALID: "N",
        CacheState.READ: "N",
        CacheState.READ_SOURCE_CLEAN: "S",
        CacheState.READ_SOURCE_DIRTY: "S",
        CacheState.WRITE_CLEAN: "S",
        CacheState.WRITE_DIRTY: "S",
        CacheState.LOCK: "S",
        CacheState.LOCK_WAITER: "S",
    },
)

_I = CacheState.INVALID
_R = CacheState.READ
_RSC = CacheState.READ_SOURCE_CLEAN
_RSD = CacheState.READ_SOURCE_DIRTY
_WC = CacheState.WRITE_CLEAN
_WD = CacheState.WRITE_DIRTY
_L = CacheState.LOCK
_LW = CacheState.LOCK_WAITER

_TABLE = TransitionTable(
    "bitar-despain",
    [
        # processor reads
        rule(_L, Event.PR_READ, _L, ["hit"]),
        rule(_LW, Event.PR_READ, _LW, ["hit"]),
        rule(_WD, Event.PR_READ, _WD, ["hit"]),
        rule(_WC, Event.PR_READ, _WC, ["hit"]),
        rule(_RSD, Event.PR_READ, _RSD, ["hit"]),
        rule(_RSC, Event.PR_READ, _RSC, ["hit"]),
        rule(_R, Event.PR_READ, _R, ["hit"]),
        rule(_I, Event.PR_READ, _I, ["bus:read"]),
        # processor writes
        rule(_L, Event.PR_WRITE, _L, ["hit"]),
        rule(_LW, Event.PR_WRITE, _LW, ["hit"]),
        rule(_WD, Event.PR_WRITE, _WD, ["hit"]),
        rule(_WC, Event.PR_WRITE, _WD, ["hit"]),
        rule(_RSD, Event.PR_WRITE, _RSD, ["bus:upgrade"]),
        rule(_RSC, Event.PR_WRITE, _RSC, ["bus:upgrade"]),
        rule(_R, Event.PR_WRITE, _R, ["bus:upgrade"]),
        rule(_I, Event.PR_WRITE, _I, ["bus:read-excl"]),
        # the lock instruction (Figure 6): zero-time with write privilege
        rule(_L, Event.PR_LOCK, _L, ["error:nested-lock"]),
        rule(_LW, Event.PR_LOCK, _LW, ["error:nested-lock"]),
        rule(_WD, Event.PR_LOCK, _L, ["lock-in-place"]),
        rule(_WC, Event.PR_LOCK, _L, ["lock-in-place"]),
        rule(_RSD, Event.PR_LOCK, _RSD, ["bus:upgrade"]),
        rule(_RSC, Event.PR_LOCK, _RSC, ["bus:upgrade"]),
        rule(_R, Event.PR_LOCK, _R, ["bus:upgrade"]),
        rule(_I, Event.PR_LOCK, _I, ["bus:read-lock"]),
        # the unlock instruction (Figure 8): the final write to the
        # locked block; broadcast only if a waiter was recorded.  A
        # spilled lock refetches with lock, then unlocks (multi-phase).
        rule(_L, Event.PR_UNLOCK, _WD, ["apply-write", "trace-unlock"]),
        rule(_LW, Event.PR_UNLOCK, _WD,
             ["apply-write", "broadcast-unlock", "trace-unlock"]),
        rule(_WD, Event.PR_UNLOCK, _WD, ["error:not-locked"]),
        rule(_WC, Event.PR_UNLOCK, _WC, ["error:not-locked"]),
        rule(_RSD, Event.PR_UNLOCK, _RSD, ["error:not-locked"]),
        rule(_RSC, Event.PR_UNLOCK, _RSC, ["error:not-locked"]),
        rule(_R, Event.PR_UNLOCK, _R, ["error:not-locked"]),
        rule(_I, Event.PR_UNLOCK, _I, ["bus:read-lock"]),
        # block writes: write-without-fetch on a miss (Feature 9)
        rule(_L, Event.PR_WRITE_BLOCK, _L, ["hit"]),
        rule(_LW, Event.PR_WRITE_BLOCK, _LW, ["hit"]),
        rule(_WD, Event.PR_WRITE_BLOCK, _WD, ["hit"]),
        rule(_WC, Event.PR_WRITE_BLOCK, _WD, ["hit"]),
        rule(_RSD, Event.PR_WRITE_BLOCK, _RSD, ["bus:write-no-fetch"]),
        rule(_RSC, Event.PR_WRITE_BLOCK, _RSC, ["bus:write-no-fetch"]),
        rule(_R, Event.PR_WRITE_BLOCK, _R, ["bus:write-no-fetch"]),
        rule(_I, Event.PR_WRITE_BLOCK, _I, ["bus:write-no-fetch"]),
        # atomic RMW (Feature 6, lock-state method): documentation rows
        # -- the engine lowers RMW to the lock/unlock instruction pair.
        rule(_WD, Event.PR_RMW, _L, ["lock-in-place"]),
        rule(_WC, Event.PR_RMW, _L, ["lock-in-place"]),
        rule(_RSD, Event.PR_RMW, _RSD, ["bus:upgrade"]),
        rule(_RSC, Event.PR_RMW, _RSC, ["bus:upgrade"]),
        rule(_R, Event.PR_RMW, _R, ["bus:upgrade"]),
        rule(_I, Event.PR_RMW, _I, ["bus:read-lock"]),
        # read fills (Figure 1): the owner of a spilled lock
        # re-establishes the lock state; otherwise no other holder means
        # write privilege, and the last fetcher becomes the source
        # (Feature 8 LRU) with status carried along.
        rule(_I, Event.FILL_READ, _LW, when=["mem-owner", "mem-waiter"]),
        rule(_I, Event.FILL_READ, _L, when=["mem-owner", "no-mem-waiter"]),
        rule(_I, Event.FILL_READ, _WC, when=["mem-other", "unshared"]),
        rule(_I, Event.FILL_READ, _RSD,
             when=["mem-other", "shared", "dirty-supplier"]),
        rule(_I, Event.FILL_READ, _RSC,
             when=["mem-other", "shared", "clean-supplier"]),
        # exclusive fills: dirtiness survives (no flush on transfer)
        rule(_I, Event.FILL_EXCL, _LW, when=["mem-owner", "mem-waiter"]),
        rule(_I, Event.FILL_EXCL, _L, when=["mem-owner", "no-mem-waiter"]),
        rule(_I, Event.FILL_EXCL, _WD, when=["mem-other", "dirty-supplier"]),
        rule(_I, Event.FILL_EXCL, _WC, when=["mem-other", "clean-supplier"]),
        # lock fills (Figure 9): a busy-wait win or a recorded memory
        # waiter means more waiters probably exist -- enter lock-waiter,
        # "since that will probably be appropriate".
        rule(_I, Event.FILL_LOCK, _LW, when=["mem-owner", "mem-waiter"]),
        rule(_I, Event.FILL_LOCK, _L, when=["mem-owner", "no-mem-waiter"]),
        rule(_I, Event.FILL_LOCK, _LW, when=["mem-other", "won-wait"]),
        rule(_I, Event.FILL_LOCK, _LW,
             when=["mem-other", "not-won-wait", "mem-waiter"]),
        rule(_I, Event.FILL_LOCK, _L,
             when=["mem-other", "not-won-wait", "no-mem-waiter"]),
        # upgrade completion: a one-cycle invalidation; with lock intent
        # the copy locks as it upgrades.
        rule(_RSD, Event.DONE_UPGRADE, _L, when=["lock-intent"]),
        rule(_RSC, Event.DONE_UPGRADE, _L, when=["lock-intent"]),
        rule(_R, Event.DONE_UPGRADE, _L, when=["lock-intent"]),
        rule(_RSD, Event.DONE_UPGRADE, _WC, when=["no-lock-intent"]),
        rule(_RSC, Event.DONE_UPGRADE, _WC, when=["no-lock-intent"]),
        rule(_R, Event.DONE_UPGRADE, _WC, when=["no-lock-intent"]),
        rule(_I, Event.DONE_UPGRADE, _I, ["rebus:read-lock"],
             when=["lock-intent"]),
        rule(_I, Event.DONE_UPGRADE, _I, ["rebus:read-excl"],
             when=["no-lock-intent"]),
        # write-without-fetch completion: overwrites everywhere
        rule(_RSD, Event.DONE_WRITE_NO_FETCH, _WC),
        rule(_RSC, Event.DONE_WRITE_NO_FETCH, _WC),
        rule(_R, Event.DONE_WRITE_NO_FETCH, _WC),
        rule(_I, Event.DONE_WRITE_NO_FETCH, _WC),
        # snooping a foreign read: a locked holder refuses and records
        # the waiter (Figure 7); sources supply without flushing and the
        # fetcher takes over source status (LRU across caches).
        rule(_L, Event.SN_READ, _LW, ["refuse-lock"]),
        rule(_LW, Event.SN_READ, _LW, ["refuse-lock"]),
        rule(_WD, Event.SN_READ, _R, ["supply"]),
        rule(_WC, Event.SN_READ, _R, ["supply"]),
        rule(_RSD, Event.SN_READ, _R, ["supply"]),
        rule(_RSC, Event.SN_READ, _R, ["supply"]),
        rule(_R, Event.SN_READ, _R),
        # snooping a foreign exclusive or lock fetch
        rule(_L, Event.SN_EXCL, _LW, ["refuse-lock"]),
        rule(_LW, Event.SN_EXCL, _LW, ["refuse-lock"]),
        rule(_WD, Event.SN_EXCL, _I, ["supply"]),
        rule(_WC, Event.SN_EXCL, _I, ["supply"]),
        rule(_RSD, Event.SN_EXCL, _I, ["supply"]),
        rule(_RSC, Event.SN_EXCL, _I, ["supply"]),
        rule(_R, Event.SN_EXCL, _I),
        # snooping a foreign upgrade
        rule(_L, Event.SN_UPGRADE, _LW, ["refuse-lock"]),
        rule(_LW, Event.SN_UPGRADE, _LW, ["refuse-lock"]),
        rule(_WD, Event.SN_UPGRADE, _I),
        rule(_WC, Event.SN_UPGRADE, _I),
        rule(_RSD, Event.SN_UPGRADE, _I),
        rule(_RSC, Event.SN_UPGRADE, _I),
        rule(_R, Event.SN_UPGRADE, _I),
        # snooping a foreign write-without-fetch: not a fetch and not an
        # upgrade, so a locked holder does NOT refuse -- invalidating a
        # locked line is a protocol error the machinery reports.
        rule(_L, Event.SN_WRITE_NO_FETCH, _I),
        rule(_LW, Event.SN_WRITE_NO_FETCH, _I),
        rule(_WD, Event.SN_WRITE_NO_FETCH, _I),
        rule(_WC, Event.SN_WRITE_NO_FETCH, _I),
        rule(_RSD, Event.SN_WRITE_NO_FETCH, _I),
        rule(_RSC, Event.SN_WRITE_NO_FETCH, _I),
        rule(_R, Event.SN_WRITE_NO_FETCH, _I),
    ],
    errors={
        "nested-lock": (
            "cache {cache}: lock of already-locked block {block} "
            "(nested locks on one block are not supported)"
        ),
        "not-locked": (
            "cache {cache}: unlock of block {block} which is not locked "
            "here (state {state})"
        ),
    },
)


class BitarDespainProtocol(TableProtocol):
    """Full-broadcast write-in protocol with lock and lock-waiter states."""

    name = "bitar-despain"
    table = _TABLE

    @classmethod
    def features(cls) -> ProtocolFeatures:
        return _FEATURES

    # -- procedural remnant: multi-phase unlock of a spilled lock ---------

    def after_fill(self, pending: "PendingAccess",
                   line: "CacheLine") -> None:
        if pending.op.kind is not OpKind.UNLOCK:
            return
        # Refetched a spilled lock in order to unlock it.
        assert pending.op.stamp is not None and pending.op.addr is not None
        self.cache.apply_write(line, pending.op.addr, pending.op.stamp)
        self._release(line)
        pending.write_applied = True

    def _release(self, line: "CacheLine") -> None:
        if line.state is CacheState.LOCK_WAITER:
            self.cache.queue_detached(
                NeedBus(op=BusOp.UNLOCK_BROADCAST), line.block
            )
            if self.cache.obs.active:
                # Ties the upcoming broadcast span back to this release,
                # so a handoff chain is traceable hold -> broadcast ->
                # woken waiter's retry -> next hold.
                self.cache.obs.record_unlock_queued(
                    self.cache.id, line.block, self.cache.now())
        line.state = CacheState.WRITE_DIRTY
        self.cache.trace.emit(self.cache.now(), EventKind.LOCK,
                              cache=self.cache.id, block=line.block,
                              action="unlocked")
