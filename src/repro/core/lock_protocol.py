"""The paper's proposed protocol (Sections E and F, Table 1 last column).

Eight states (Section E.1), cache-state locking in zero time (E.3),
efficient busy wait via the lock-waiter state and busy-wait register
(E.4), dynamic fetch-for-write on read miss (Figure 1, Feature 5 ``D``),
no flush on cache-to-cache transfer with status carried along (Feature 7
``NF,S``), last-fetcher-becomes-source (Feature 8 ``LRU,MEM``), and
write-without-fetch (Feature 9).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.bus.signals import SnoopReply
from repro.bus.transaction import BusOp, BusTransaction
from repro.cache.state import CacheState
from repro.common.errors import ProgramError
from repro.common.types import Stamp, WordAddr
from repro.processor.isa import OpKind
from repro.protocols.base import (
    Action,
    CoherenceProtocol,
    Done,
    NeedBus,
    Outcome,
    TxnResult,
)
from repro.protocols.features import (
    DirectoryDuality,
    FlushPolicy,
    ProtocolFeatures,
    ReadSourcePolicy,
    SharingDetermination,
)
from repro.sim.events import EventKind

if TYPE_CHECKING:
    from repro.cache.cache import PendingAccess
    from repro.cache.line import CacheLine

_FEATURES = ProtocolFeatures(
    name="Our proposal (Bitar & Despain)",
    citation="Bitar, Despain 1986",
    year=1986,
    distributed_state="RWLDS",
    directory=DirectoryDuality.NON_IDENTICAL_DUAL,
    bus_invalidate_signal=True,
    fetch_for_write_on_read_miss=SharingDetermination.DYNAMIC,
    atomic_rmw=True,
    flush_policy=FlushPolicy.NO_FLUSH_WITH_STATUS,
    read_source_policy=ReadSourcePolicy.LRU,
    write_without_fetch=True,
    efficient_busy_wait=True,
    state_roles={
        CacheState.INVALID: "N",
        CacheState.READ: "N",
        CacheState.READ_SOURCE_CLEAN: "S",
        CacheState.READ_SOURCE_DIRTY: "S",
        CacheState.WRITE_CLEAN: "S",
        CacheState.WRITE_DIRTY: "S",
        CacheState.LOCK: "S",
        CacheState.LOCK_WAITER: "S",
    },
)


class BitarDespainProtocol(CoherenceProtocol):
    """Full-broadcast write-in protocol with lock and lock-waiter states."""

    name = "bitar-despain"

    @classmethod
    def features(cls) -> ProtocolFeatures:
        return _FEATURES

    # -- processor side ---------------------------------------------------

    def processor_read(
        self, line: "CacheLine | None", addr: WordAddr, private_hint: bool = False
    ) -> Action:
        if line is not None and line.state.readable:
            return Done(value=line.read_word(self.cache.offset(addr)))
        # Figure 1: the fill state is decided dynamically by the hit line.
        return NeedBus(op=BusOp.READ_BLOCK)

    def processor_lock(self, line: "CacheLine | None", addr: WordAddr) -> Action:
        """The lock instruction: a special read that locks the block
        (Figure 6).  With write privilege in hand, locking is zero-time."""
        if line is not None and line.state.locked:
            raise ProgramError(
                f"cache {self.cache.id}: lock of already-locked block "
                f"{line.block} (nested locks on one block are not supported)"
            )
        if line is not None and line.state.writable:
            line.state = CacheState.LOCK
            self.cache.trace.emit(self.cache.now(), EventKind.LOCK,
                                  cache=self.cache.id, block=line.block,
                                  action="locked-in-place")
            return Done(value=line.read_word(self.cache.offset(addr)))
        if line is not None and line.state.readable:
            return NeedBus(op=BusOp.UPGRADE, lock_intent=True)
        return NeedBus(op=BusOp.READ_LOCK, lock_intent=True)

    def processor_unlock(
        self, line: "CacheLine | None", addr: WordAddr, stamp: Stamp
    ) -> Action:
        """The unlock instruction: the final write to the locked block
        (Figure 8).  Broadcasts the unlock only if a waiter was recorded."""
        if line is None:
            # The locked block was purged; its lock tag is in memory.
            # Refetch with lock, then unlock (multi-phase).
            return NeedBus(op=BusOp.READ_LOCK, lock_intent=True)
        if not line.state.locked:
            raise ProgramError(
                f"cache {self.cache.id}: unlock of block {line.block} "
                f"which is not locked here (state {line.state})"
            )
        self.cache.apply_write(line, addr, stamp)
        self._release(line)
        return Done(write_applied=True)

    def _release(self, line: "CacheLine") -> None:
        if line.state is CacheState.LOCK_WAITER:
            self.cache.queue_detached(
                NeedBus(op=BusOp.UNLOCK_BROADCAST), line.block
            )
        line.state = CacheState.WRITE_DIRTY
        self.cache.trace.emit(self.cache.now(), EventKind.LOCK,
                              cache=self.cache.id, block=line.block,
                              action="unlocked")

    def processor_write_block(self, line: "CacheLine | None", addr: WordAddr) -> Action:
        """Feature 9: write-without-fetch on a write miss (save state)."""
        if line is not None and line.state.writable:
            return Done()
        return NeedBus(op=BusOp.WRITE_NO_FETCH)

    # -- requester side -----------------------------------------------------

    def after_txn(
        self,
        pending: "PendingAccess",
        txn: BusTransaction,
        response,
        data: list[Stamp] | None,
    ) -> TxnResult:
        if txn.op is BusOp.WRITE_NO_FETCH:
            blank = [0] * self.cache.config.words_per_block
            self.cache.install_block(txn.block, CacheState.WRITE_CLEAN, blank)
            return TxnResult(Outcome.DONE)

        if txn.op is BusOp.UPGRADE:
            line = self.cache.line_for(txn.block)
            if line is None:
                op = BusOp.READ_LOCK if txn.lock_intent else BusOp.READ_EXCL
                return TxnResult(
                    Outcome.REBUS, NeedBus(op=op, lock_intent=txn.lock_intent)
                )
            if response.locked:  # cannot happen: we held a valid copy
                return TxnResult(Outcome.WAIT_LOCK)
            line.state = CacheState.LOCK if txn.lock_intent else CacheState.WRITE_CLEAN
            return TxnResult(Outcome.DONE)

        if txn.op.fetches_block:
            if response.locked or response.memory_locked:
                return TxnResult(Outcome.WAIT_LOCK)
            assert data is not None
            state = self.fill_state(txn, response)
            line = self.cache.install_block(txn.block, state, data)
            if pending.op.kind is OpKind.UNLOCK:
                # Refetched a spilled lock in order to unlock it.
                assert pending.op.stamp is not None and pending.op.addr is not None
                self.cache.apply_write(line, pending.op.addr, pending.op.stamp)
                self._release(line)
                pending.write_applied = True
            return TxnResult(Outcome.DONE)

        return super().after_txn(pending, txn, response, data)

    def fill_state(self, txn: BusTransaction, response) -> CacheState:
        if response.memory_lock_owner:
            # The owner touched a block whose lock had been spilled to
            # memory (E.3): re-establish the in-cache lock state.
            return (
                CacheState.LOCK_WAITER
                if response.memory_lock_waiter
                else CacheState.LOCK
            )
        if txn.op is BusOp.READ_LOCK:
            # A busy-wait win or a recorded memory waiter means more waiters
            # probably exist: enter lock-waiter (Figure 9, "since that will
            # probably be appropriate").
            if txn.high_priority or response.memory_lock_waiter:
                return CacheState.LOCK_WAITER
            return CacheState.LOCK
        if txn.op is BusOp.READ_EXCL:
            return (
                CacheState.WRITE_DIRTY
                if response.supplier_dirty
                else CacheState.WRITE_CLEAN
            )
        # READ_BLOCK: Figure 1 -- no other holder means take write privilege.
        if not response.shared_hit:
            return CacheState.WRITE_CLEAN
        # The last fetcher becomes the source (Feature 8 LRU).
        if response.supplier_dirty:
            return CacheState.READ_SOURCE_DIRTY
        return CacheState.READ_SOURCE_CLEAN

    # -- snooper side ----------------------------------------------------------

    def snoop(self, line: "CacheLine", txn: BusTransaction) -> SnoopReply:
        if line.state.locked and (
            txn.op.fetches_block or txn.op is BusOp.UPGRADE
        ):
            # Figure 7: refuse and record the waiter.
            line.state = CacheState.LOCK_WAITER
            self.cache.trace.emit(self.cache.now(), EventKind.LOCK,
                                  cache=self.cache.id, block=line.block,
                                  action="waiter-recorded")
            return SnoopReply(hit=True, locked=True)
        return super().snoop(line, txn)

    def read_downgrade_state(self, line: "CacheLine", flushed: bool) -> CacheState:
        # The fetcher takes over source status (LRU across caches).
        return CacheState.READ
