"""Busy-wait spinlocks (Sections B.2, E.3, E.4).

Program-fragment builders for the three lock disciplines the benches
compare:

* :class:`TasLock` -- test-and-set retried over the bus (every retry is a
  bus transaction: the traffic the busy-wait register eliminates);
* :class:`TtasLock` -- test-and-test-and-set: spin reading the cached
  copy, going to the bus only when the lock reads free (the "loop on a
  one in its cache" of Censier & Feautrier);
* :class:`CacheLock` (in :mod:`repro.sync.cache_lock`) -- the proposal's
  cache-state lock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import WordAddr
from repro.processor import isa
from repro.processor.isa import Op


@dataclass(frozen=True)
class TasLock:
    """Test-and-set spinlock over a lock word."""

    lock_word: WordAddr
    token: int = 1

    def acquire(self, *, ready_work: int = 0) -> list[Op]:
        return [isa.Op(isa.OpKind.TAS_ACQUIRE, self.lock_word,
                       value=self.token, ready_work=ready_work)]

    def release(self) -> list[Op]:
        return [isa.release(self.lock_word)]


@dataclass(frozen=True)
class TtasLock:
    """Test-and-test-and-set spinlock over a lock word."""

    lock_word: WordAddr
    token: int = 1

    def acquire(self, *, ready_work: int = 0) -> list[Op]:
        return [isa.Op(isa.OpKind.TTAS_ACQUIRE, self.lock_word,
                       value=self.token, ready_work=ready_work)]

    def release(self) -> list[Op]:
        return [isa.release(self.lock_word)]


def critical_section(lock, body: list[Op], *, ready_work: int = 0) -> list[Op]:
    """Wrap ``body`` in acquire/release of ``lock`` (any lock class here
    or :class:`~repro.sync.cache_lock.CacheLock`)."""
    return [*lock.acquire(ready_work=ready_work), *body, *lock.release()]
