"""Software queues on busy-wait locks (Section B.2).

"If the hardware in a multiprocessor system does not itself implement
queuing, then by default the software must implement it using busy wait.
...a queue-manager procedure will busy wait for access to software-
implemented queues, and when it gains access to a queue, will insert or
delete a process."

A :class:`SoftwareQueue` is a bounded circular buffer whose descriptor
(head, tail, count -- the semaphore state) and slots live in
block-aligned atoms.  The builders emit the exact reference pattern a
queue manager performs: lock the descriptor, read head/tail, read or
write a slot, write the updated indices, unlock.  The queue's logical
state is tracked generator-side (the simulator's ISA has no
data-dependent branches), so programs built from interleaved
enqueue/dequeue fragments touch the same words a real manager would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ProgramError
from repro.processor import isa
from repro.processor.isa import Op
from repro.sync.cache_lock import CacheLock
from repro.common.layout import Atom, Layout


@dataclass
class SoftwareQueue:
    """A lock-protected bounded queue: descriptor atom + slot region.

    Descriptor layout (one block): word 0 = lock word, word 1 = head,
    word 2 = tail, word 3+ = count/semaphore.
    """

    descriptor: Atom
    slots: list[int]  # word addresses of the entry slots
    capacity: int
    _head: int = 0
    _tail: int = 0
    _count: int = 0
    _lock: CacheLock = field(init=False)

    def __post_init__(self) -> None:
        if self.capacity < 1 or self.capacity > len(self.slots):
            raise ProgramError("capacity must fit in the slot region")
        self._lock = CacheLock(self.descriptor.lock_word)

    @staticmethod
    def allocate(layout: Layout, capacity: int = 4,
                 descriptor_words: int = 4) -> "SoftwareQueue":
        descriptor = Atom.allocate(layout, descriptor_words)
        slots = layout.region(capacity)
        return SoftwareQueue(descriptor=descriptor, slots=slots, capacity=capacity)

    # -- state (generator side) -------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count >= self.capacity

    @property
    def empty(self) -> bool:
        return self._count == 0

    # -- program fragments ----------------------------------------------------

    def _descriptor_reads(self) -> list[Op]:
        words = self.descriptor.data_words()
        return [isa.read(w) for w in words[:2]]  # head, tail

    def enqueue_ops(self, value: int, *, ready_work: int = 0) -> list[Op]:
        """Insert ``value``: lock, read indices, write slot, update tail,
        unlock (the unlock doubles as the count update)."""
        if self.full:
            raise ProgramError("enqueue on a full queue")
        slot = self.slots[self._tail]
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        words = self.descriptor.data_words()
        ops: list[Op] = []
        ops += self._lock.acquire(ready_work=ready_work)
        ops += self._descriptor_reads()
        ops.append(isa.write(slot, value=value))
        ops.append(isa.write(words[1], value=self._tail))  # new tail
        ops += self._lock.release(value=self._count)
        return ops

    def dequeue_ops(self, *, ready_work: int = 0) -> list[Op]:
        """Remove the head entry: lock, read indices, read slot, update
        head, unlock."""
        if self.empty:
            raise ProgramError("dequeue on an empty queue")
        slot = self.slots[self._head]
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        words = self.descriptor.data_words()
        ops: list[Op] = []
        ops += self._lock.acquire(ready_work=ready_work)
        ops += self._descriptor_reads()
        ops.append(isa.read(slot))
        ops.append(isa.write(words[0], value=self._head))  # new head
        ops += self._lock.release(value=self._count)
        return ops
