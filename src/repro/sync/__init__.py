"""Synchronization library: spinlocks, cache-state locks, software queues."""

from repro.sync.cache_lock import CacheLock
from repro.sync.queue import SoftwareQueue
from repro.sync.spinlock import TasLock, TtasLock, critical_section

__all__ = [
    "CacheLock",
    "SoftwareQueue",
    "TasLock",
    "TtasLock",
    "critical_section",
]
