"""The proposal's cache-state lock (Section E.3).

Locking is a special read of the atom's first word that locks its block
concurrently with the fetch; unlocking is the final write.  Locking and
unlocking therefore "usually occur in zero time": no lock bit, no
test-and-set, no block devoted to a lock word.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import WordAddr
from repro.processor import isa
from repro.processor.isa import Op


@dataclass(frozen=True)
class CacheLock:
    """Lock identified by the first word of the atom's first block."""

    lock_word: WordAddr

    def acquire(self, *, ready_work: int = 0) -> list[Op]:
        """The lock instruction: a read that locks (Figure 6).  With
        ``ready_work`` > 0 and ``WaitMode.WORK``, the processor executes
        that many cycles of independent work while waiting (Section E.4)."""
        return [isa.lock(self.lock_word, ready_work=ready_work)]

    def release(self, value: int = 1) -> list[Op]:
        """The unlock instruction: the final write to the block (Figure 8)."""
        return [isa.unlock(self.lock_word, value=value)]
