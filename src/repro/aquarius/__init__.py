"""The Aquarius two-switch architecture (Figure 11)."""

from repro.aquarius.crossbar import CROSSBAR_BASE, Crossbar, CrossbarStats
from repro.aquarius.system import AquariusSimulator, aquarius_workload

__all__ = [
    "AquariusSimulator",
    "CROSSBAR_BASE",
    "Crossbar",
    "CrossbarStats",
    "aquarius_workload",
]
