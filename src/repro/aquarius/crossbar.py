"""The Aquarius lower switch-memory system: a banked crossbar (Figure 11).

The paper's organization splits traffic across two systems: the single
synchronization bus (all hard atoms) and a crossbar carrying instructions
and non-synchronization data.  The crossbar system "will not need to
serialize accesses to a block, but will only need to provide the latest
version of each block" (Section G.1) -- so this model provides instant
coherence (one store of word stamps) and models only *contention*:
each memory bank services one request at a time with a fixed latency;
requests to distinct banks proceed in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import Stamp, WordAddr

#: Word addresses at or above this base route to the crossbar system.
#: (Hard atoms live below it, on the synchronization bus -- "all hard
#: atoms will reside in the upper system".)
CROSSBAR_BASE: WordAddr = 1 << 20


@dataclass
class CrossbarStats:
    accesses: int = 0
    reads: int = 0
    writes: int = 0
    #: Cycles requests spent queued behind a busy bank.
    conflict_cycles: int = 0


@dataclass
class Crossbar:
    """N-bank crossbar with per-bank occupancy."""

    n_banks: int = 8
    latency: int = 3
    words_per_bank_line: int = 4
    _bank_busy_until: list[int] = field(default_factory=list)
    _words: dict[WordAddr, Stamp] = field(default_factory=dict)
    stats: CrossbarStats = field(default_factory=CrossbarStats)

    def __post_init__(self) -> None:
        if self.n_banks <= 0:
            raise ValueError("n_banks must be positive")
        if self.latency <= 0:
            raise ValueError("latency must be positive")
        self._bank_busy_until = [0] * self.n_banks

    def bank_of(self, addr: WordAddr) -> int:
        line = (addr - CROSSBAR_BASE) // self.words_per_bank_line
        return line % self.n_banks

    def access(self, addr: WordAddr, now: int, *, stamp: Stamp | None = None) -> tuple[int, Stamp]:
        """Issue a read (``stamp=None``) or write at cycle ``now``.

        Returns ``(completion_cycle, stamp_seen_or_written)``.  The
        request occupies its bank from the later of now / bank-free until
        completion; queueing delay is counted as conflict cycles.
        """
        if addr < CROSSBAR_BASE:
            raise ValueError(
                f"address {addr} belongs to the synchronization bus, "
                f"not the crossbar"
            )
        bank = self.bank_of(addr)
        start = max(now, self._bank_busy_until[bank])
        self.stats.conflict_cycles += start - now
        done = start + self.latency
        self._bank_busy_until[bank] = done
        self.stats.accesses += 1
        if stamp is None:
            self.stats.reads += 1
            return done, self._words.get(addr, 0)
        self.stats.writes += 1
        self._words[addr] = stamp
        return done, stamp

    def peek(self, addr: WordAddr) -> Stamp:
        return self._words.get(addr, 0)

    @property
    def utilization_possible(self) -> int:
        """Upper bound on concurrent service (one request per bank)."""
        return self.n_banks
