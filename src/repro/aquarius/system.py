"""The Aquarius two-switch system (Figure 11, Section G.1).

Program (Prolog) processors, a floating-point processor, and an I/O
processor share two switch-memory systems: the single **synchronization
bus** (the upper system -- all hard atoms, running the full-broadcast
protocol under study) and a **banked crossbar** (the lower system --
instructions and non-synchronization data, needing only latest-version
semantics).
"""

from __future__ import annotations

from typing import Sequence

from repro.aquarius.crossbar import CROSSBAR_BASE, Crossbar
from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.processor import isa
from repro.processor.program import Program
from repro.sim.engine import Simulator
from repro.sync.queue import SoftwareQueue
from repro.workloads.base import layout_for


class AquariusSimulator(Simulator):
    """A :class:`~repro.sim.engine.Simulator` with the lower crossbar
    system attached to every processor."""

    def __init__(
        self,
        config: SystemConfig,
        programs: Sequence[Program],
        *,
        crossbar_banks: int = 8,
        crossbar_latency: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(config, programs, **kwargs)
        self.crossbar = Crossbar(n_banks=crossbar_banks,
                                 latency=crossbar_latency)
        for processor in self.processors:
            processor.crossbar = self.crossbar


def aquarius_workload(
    config: SystemConfig,
    *,
    tasks_per_processor: int = 8,
    crossbar_refs_per_task: int = 6,
    service_cycles: int = 4,
    seed: int | None = None,
) -> list[Program]:
    """Medium-grained lightweight Prolog tasks (Section G.1).

    Each program processor repeatedly: reads/writes its code and local
    data through the crossbar (goal reduction), then enqueues a service
    request on the synchronization bus for the server processor
    (processor ``n-1``, standing in for the FPP/IOP of Figure 11), which
    dequeues and services it.
    """
    layout = layout_for(config)
    queue = SoftwareQueue.allocate(layout, capacity=16)
    base_seed = config.seed if seed is None else seed
    n = config.num_processors
    if n < 2:
        raise ValueError("Aquarius needs at least one worker and one server")
    programs: list[Program] = []
    server_ops: list[isa.Op] = []
    for pid in range(n - 1):
        rng = derive_rng(base_seed, "aquarius", pid)
        code_base = CROSSBAR_BASE + pid * 4096
        ops: list[isa.Op] = []
        for task in range(tasks_per_processor):
            for _ in range(crossbar_refs_per_task):
                addr = code_base + rng.randrange(1024)
                if rng.random() < 0.3:
                    ops.append(isa.write(addr, value=pid + 1))
                else:
                    ops.append(isa.read(addr))
            ops += queue.enqueue_ops(pid * 100 + task, ready_work=4)
            server_ops += queue.dequeue_ops(ready_work=4)
            server_ops.append(isa.compute(service_cycles))
        programs.append(Program(ops, name=f"prolog-p{pid}"))
    programs.append(Program(server_ops, name=f"server-p{n - 1}"))
    return programs
