"""Seeded, deterministic fault plans for chaos-testing the runners.

A :class:`FaultPlan` decides, from nothing but its own configuration,
whether a given *(point index, attempt)* execution should misbehave and
how.  Because the decision is a pure function of ``(seed, index,
attempt)``, two sweeps with the same plan inject exactly the same
faults -- which is what makes resilient-runner behaviour (retries, pool
restarts, quarantine) assertable bit-for-bit in tests and in the
``repro sweep --inject-faults`` chaos mode.

Four fault kinds cover the runner failure surface:

* ``raise``   -- the worker raises :class:`~repro.common.errors.FaultInjected`;
* ``hang``    -- the worker stalls for :attr:`FaultPlan.hang_seconds`
  (long enough to trip any per-point timeout);
* ``kill``    -- the worker SIGKILLs itself, breaking the process pool;
* ``corrupt`` -- the worker returns garbage instead of statistics.

Spec strings (the CLI surface) are comma-separated ``kind@index`` terms
with an optional ``:times`` suffix bounding how many attempts fault
(default 1 -- the first retry succeeds; ``*`` means every attempt)::

    kill@1              point 1's first attempt dies
    hang@2:2            point 2's first two attempts stall
    raise@0:*           point 0 never succeeds
    corrupt@*%25        every point corrupts with prob. 1/4 (seeded)

``kind@*%P`` applies the fault to any point with probability ``P`` %,
decided by a hash of ``(seed, index, attempt)`` -- deterministic for a
fixed seed, different across seeds.
"""

from __future__ import annotations

import enum
import os
import signal
import time
import zlib
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, FaultInjected


class FaultKind(str, enum.Enum):
    """What a faulted execution does instead of running its point."""

    RAISE = "raise"
    HANG = "hang"
    KILL = "kill"
    CORRUPT = "corrupt"


#: Attempts are 1-based; ``times=ALWAYS`` faults every attempt.
ALWAYS: int | None = None


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: ``kind`` at point ``index`` for ``times`` attempts.

    ``index is None`` targets every point, gated by ``probability``
    (1.0 = always).  ``times is None`` (:data:`ALWAYS`) never stops
    faulting -- the point can only end quarantined or failed.
    """

    kind: FaultKind
    index: int | None = None
    times: int | None = 1
    probability: float = 1.0

    def applies(self, index: int, attempt: int, seed: int) -> bool:
        if self.index is not None and self.index != index:
            return False
        if self.times is not None and attempt > self.times:
            return False
        if self.probability >= 1.0:
            return True
        return _roll(seed, index, attempt) < self.probability


def _roll(seed: int, index: int, attempt: int) -> float:
    """Stable uniform draw in [0, 1) from ``(seed, index, attempt)``.

    crc32 rather than ``hash()`` so the draw survives hash
    randomization and is identical across interpreter runs.
    """
    data = f"{seed}:{index}:{attempt}".encode()
    return (zlib.crc32(data) & 0xFFFFFFFF) / 2**32


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of fault rules plus the injection knobs."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: How long a ``hang`` fault stalls; the per-point timeout must be
    #: below this for the hang to be observed as a timeout.
    hang_seconds: float = 3600.0

    def fault_for(self, index: int, attempt: int) -> FaultKind | None:
        """The fault (if any) for attempt ``attempt`` of point ``index``."""
        for spec in self.specs:
            if spec.applies(index, attempt, self.seed):
                return spec.kind
        return None

    def kills(self, index: int, attempt: int) -> bool:
        """Would this execution SIGKILL its worker?  The parent uses
        this to attribute a broken process pool to the point that broke
        it instead of penalizing innocent in-flight points."""
        return self.fault_for(index, attempt) is FaultKind.KILL

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
            "specs": [
                {
                    "kind": spec.kind.value,
                    "index": spec.index,
                    "times": spec.times,
                    "probability": spec.probability,
                }
                for spec in self.specs
            ],
        }

    @classmethod
    def parse(cls, text: str, *, seed: int = 0,
              hang_seconds: float = 3600.0) -> "FaultPlan":
        """Parse a CLI spec string (see the module docstring)."""
        specs = []
        for term in text.split(","):
            term = term.strip()
            if not term:
                continue
            specs.append(_parse_term(term))
        if not specs:
            raise ConfigError(f"empty fault spec: {text!r}")
        return cls(specs=tuple(specs), seed=seed, hang_seconds=hang_seconds)


def _parse_term(term: str) -> FaultSpec:
    try:
        kind_text, target = term.split("@", 1)
        kind = FaultKind(kind_text.strip())
    except ValueError:
        choices = ", ".join(k.value for k in FaultKind)
        raise ConfigError(
            f"bad fault term {term!r}: expected kind@index[:times] "
            f"with kind one of {choices}"
        ) from None
    times: int | None = 1
    if ":" in target:
        target, times_text = target.split(":", 1)
        times = None if times_text == "*" else _parse_int(times_text, term)
    probability = 1.0
    if "%" in target:
        target, percent = target.split("%", 1)
        probability = _parse_int(percent, term) / 100.0
    index = None if target == "*" else _parse_int(target, term)
    if index is None and probability >= 1.0 and times is None:
        raise ConfigError(
            f"fault term {term!r} faults every attempt of every point; "
            f"no sweep could ever finish -- bound it with :times or %prob"
        )
    return FaultSpec(kind=kind, index=index, times=times,
                     probability=probability)


def _parse_int(text: str, term: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise ConfigError(f"bad fault term {term!r}: {text!r} is not an "
                          f"integer") from None
    if value < 0:
        raise ConfigError(f"bad fault term {term!r}: {value} is negative")
    return value


class CorruptStats:
    """The payload a ``corrupt`` fault returns instead of statistics.

    Deliberately *not* a :class:`~repro.sim.stats.SimStats`; the
    executor's result validation must reject it.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CorruptStats()"


def apply_fault(kind: FaultKind, *, index: int, attempt: int,
                hang_seconds: float = 3600.0):
    """Perform ``kind`` inside a worker; called by the sweep executor.

    Returns a :class:`CorruptStats` for ``corrupt`` (and for ``hang``,
    after stalling -- by then the parent has timed the attempt out and
    discards whatever comes back); raises or dies for the others.
    """
    if kind is FaultKind.RAISE:
        raise FaultInjected(
            f"injected fault: raise at point {index} attempt {attempt}"
        )
    if kind is FaultKind.KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    if kind is FaultKind.HANG:
        time.sleep(hang_seconds)
    return CorruptStats()
