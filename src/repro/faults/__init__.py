"""Fault injection for chaos-testing the execution layer.

See :mod:`repro.faults.plan` for the fault model and the spec grammar
used by ``repro sweep --inject-faults``.
"""

from repro.faults.plan import (
    ALWAYS,
    CorruptStats,
    FaultKind,
    FaultPlan,
    FaultSpec,
    apply_fault,
)

__all__ = [
    "ALWAYS",
    "CorruptStats",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "apply_fault",
]
