"""State-encoding costs (Feature 2 and Section D.3).

Feature 2: fully-distributed state information "is consolidated in just a
few bits per block frame (ceil(log2 #states))".

Section D.3: with sub-block transfer units, either valid+dirty bits are
stored per unit (2 bits) with full state per block, or the full state is
stored per unit -- "this appears simpler, but will require three, rather
than just two, state bits per transfer unit if the protocol has more than
four states".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.protocols import get_protocol


def state_bits(protocol_name: str) -> int:
    """Bits per block frame to encode the protocol's states (Feature 2)."""
    n_states = len(get_protocol(protocol_name).states())
    return max(1, math.ceil(math.log2(n_states)))


@dataclass(frozen=True)
class TransferUnitEncoding:
    """Per-transfer-unit storage for the two D.3 options."""

    protocol: str
    units_per_block: int
    #: Option 1: valid+dirty per unit, full state once per block.
    per_unit_bits_option1: int
    block_bits_option1: int
    #: Option 2: full state per unit.
    per_unit_bits_option2: int
    block_bits_option2: int

    @property
    def option2_simpler_but_bigger(self) -> bool:
        return self.block_bits_option2 >= self.block_bits_option1


def transfer_unit_encoding(protocol_name: str,
                           units_per_block: int) -> TransferUnitEncoding:
    """Compare D.3's two transfer-unit state-storage options."""
    if units_per_block <= 0:
        raise ValueError("units_per_block must be positive")
    full = state_bits(protocol_name)
    option1_unit = 2  # valid + dirty
    option1_block = full + option1_unit * units_per_block
    option2_block = full * units_per_block
    return TransferUnitEncoding(
        protocol=protocol_name,
        units_per_block=units_per_block,
        per_unit_bits_option1=option1_unit,
        block_bits_option1=option1_block,
        per_unit_bits_option2=full,
        block_bits_option2=option2_block,
    )
