"""Table 1: Evolution of full-broadcast, write-in cache-synchronization
schemes.

Both halves of the table (the states matrix and the features matrix) are
generated from the protocol implementations' ``features()`` descriptors,
so this file cannot drift from the code: the table *is* the code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.protocols import TABLE1_PROTOCOLS, get_protocol
from repro.protocols.features import (
    TABLE1_STATE_LABELS,
    TABLE1_STATE_ROWS,
    ProtocolFeatures,
)


@dataclass(frozen=True)
class Table1:
    """The assembled evolution matrix."""

    columns: tuple[str, ...]  # protocol registry names, paper order
    features: tuple[ProtocolFeatures, ...]
    states: list[list[str]]  # rows follow TABLE1_STATE_ROWS
    feature_rows: list[list[str]]
    feature_labels: list[str]

    def render(self) -> str:
        headers = ["State"] + [f.citation for f in self.features]
        state_rows = [
            [TABLE1_STATE_LABELS[state]] + self.states[i]
            for i, state in enumerate(TABLE1_STATE_ROWS)
        ]
        top = render_table(
            headers, state_rows,
            title="Table 1 (states): N = non-source, S = source, - = unused",
        )
        headers2 = ["Feature"] + [f.citation for f in self.features]
        rows2 = [
            [self.feature_labels[i]] + self.feature_rows[i]
            for i in range(len(self.feature_labels))
        ]
        bottom = render_table(headers2, rows2, title="Table 1 (features)")
        return top + "\n\n" + bottom

    def _halves(self) -> tuple[list[tuple[str, list[str]]],
                               list[tuple[str, list[str]]]]:
        """(label, cells) rows for the states and features halves."""
        state_rows = [
            (TABLE1_STATE_LABELS[state], self.states[i])
            for i, state in enumerate(TABLE1_STATE_ROWS)
        ]
        feature_rows = [
            (self.feature_labels[i], self.feature_rows[i])
            for i in range(len(self.feature_labels))
        ]
        return state_rows, feature_rows

    def render_markdown(self) -> str:
        """Both halves as GitHub-flavored Markdown tables."""
        citations = [f.citation for f in self.features]
        state_rows, feature_rows = self._halves()

        def table(first: str, rows: list[tuple[str, list[str]]]) -> str:
            head = "| " + " | ".join([first] + citations) + " |"
            sep = "|" + "---|" * (len(citations) + 1)
            body = ["| " + " | ".join([label] + cells) + " |"
                    for label, cells in rows]
            return "\n".join([head, sep] + body)

        return ("### Table 1 (states)\n\n"
                "N = non-source, S = source, - = unused\n\n"
                + table("State", state_rows)
                + "\n\n### Table 1 (features)\n\n"
                + table("Feature", feature_rows) + "\n")

    def render_csv(self) -> str:
        """Both halves as one CSV, tagged by a ``section`` column."""
        import csv
        import io

        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["section", "label", *self.columns])
        state_rows, feature_rows = self._halves()
        for label, cells in state_rows:
            writer.writerow(["states", label, *cells])
        for label, cells in feature_rows:
            writer.writerow(["features", label, *cells])
        return out.getvalue()


FEATURE_LABELS = [
    "1. Cache-to-cache transfer; serialization",
    "2. Fully-distributed state (R/W/L/D/S)",
    "3. Directory duality",
    "4. Bus invalidate signal",
    "5. Fetch unshared for write on read miss",
    "6. Processor atomic read-modify-write",
    "7. Flushing on cache-to-cache transfer",
    "8. Sources for read-privilege block",
    "9. Writing without fetch on write miss",
    "10. Efficient busy wait",
]


def _check(flag: bool) -> str:
    return "yes" if flag else "-"


def feature_row_values(features: ProtocolFeatures) -> list[str]:
    """One protocol's column of the features half, in row order."""
    return [
        _check(features.cache_to_cache_transfer),
        features.distributed_state,
        features.directory.value,
        _check(features.bus_invalidate_signal),
        features.fetch_for_write_on_read_miss.value,
        _check(features.atomic_rmw),
        features.flush_policy.value,
        features.read_source_policy.value,
        _check(features.write_without_fetch),
        _check(features.efficient_busy_wait),
    ]


def build_table1(protocols: tuple[str, ...] = TABLE1_PROTOCOLS) -> Table1:
    """Assemble Table 1 from the protocol registry."""
    features = tuple(get_protocol(name).features() for name in protocols)
    states = [
        [f.state_role(state) for f in features] for state in TABLE1_STATE_ROWS
    ]
    feature_rows_by_protocol = [feature_row_values(f) for f in features]
    feature_rows = [
        [feature_rows_by_protocol[p][r] for p in range(len(features))]
        for r in range(len(FEATURE_LABELS))
    ]
    return Table1(
        columns=protocols,
        features=features,
        states=states,
        feature_rows=feature_rows,
        feature_labels=FEATURE_LABELS,
    )


#: The paper's printed Table 1, reconstructed row-by-row, used by tests to
#: assert the generated table matches the publication.  Columns follow
#: TABLE1_PROTOCOLS order: Goodman, Frank, Pap.Pat., Yen, Katz, proposal.
EXPECTED_STATES: dict[str, list[str]] = {
    "Invalid": ["N", "N", "N", "N", "N", "N"],
    "Read": ["N", "N", "S", "N", "N", "N"],
    "Read, Clean (source)": ["-", "-", "-", "-", "-", "S"],
    "Read, Dirty": ["-", "-", "-", "-", "S", "S"],
    "Write, Clean": ["N", "-", "S", "N", "S", "S"],
    "Write, Dirty": ["S", "S", "S", "S", "S", "S"],
    "Lock, Dirty": ["-", "-", "-", "-", "-", "S"],
    "Lock, Dirty, Waiter": ["-", "-", "-", "-", "-", "S"],
}

EXPECTED_FEATURES: dict[str, list[str]] = {
    "1. Cache-to-cache transfer; serialization": ["yes"] * 6,
    "2. Fully-distributed state (R/W/L/D/S)": [
        "RWDS", "RWD", "RWDS", "RWDS", "RWDS", "RWLDS",
    ],
    "3. Directory duality": ["ID", "ID", "ID*", "-", "DPR", "NID"],
    "4. Bus invalidate signal": ["-", "yes", "yes", "yes", "yes", "yes"],
    "5. Fetch unshared for write on read miss": ["-", "-", "D", "S", "S", "D"],
    "6. Processor atomic read-modify-write": ["-", "yes", "yes", "-", "yes", "yes"],
    "7. Flushing on cache-to-cache transfer": ["F", "NF", "F", "F", "NF,S", "NF,S"],
    "8. Sources for read-privilege block": ["-", "-", "ARB", "-", "MEM", "LRU,MEM"],
    "9. Writing without fetch on write miss": ["-", "-", "-", "-", "-", "yes"],
    "10. Efficient busy wait": ["-", "-", "-", "-", "-", "yes"],
}
