"""Protocol comparison runner.

One call runs a workload across a protocol field (with per-protocol lock
lowering) and returns a uniform result table -- the machinery behind the
shootout example and the ``python -m repro compare`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.metrics import lock_metrics
from repro.analysis.report import render_table
from repro.common.config import CacheConfig, SystemConfig
from repro.processor.program import LockStyle, Program
from repro.sim.engine import run_workload
from repro.sim.stats import SimStats


@dataclass(frozen=True)
class ComparisonRow:
    protocol: str
    cycles: int
    bus_busy_cycles: int
    bus_utilization: float
    failed_lock_attempts: int
    lock_acquisitions: int
    stale_reads: int

    @staticmethod
    def from_stats(protocol: str, stats: SimStats) -> "ComparisonRow":
        return ComparisonRow(
            protocol=protocol,
            cycles=stats.cycles,
            bus_busy_cycles=stats.bus_busy_cycles,
            bus_utilization=stats.bus_utilization,
            failed_lock_attempts=stats.failed_lock_attempts,
            lock_acquisitions=stats.total_lock_acquisitions,
            stale_reads=stats.stale_reads,
        )


def default_style(protocol: str) -> LockStyle:
    return LockStyle.CACHE_LOCK if protocol == "bitar-despain" else LockStyle.TTAS


def compare_protocols(
    protocols: Sequence[str],
    make_programs: Callable[[SystemConfig, LockStyle], list[Program]],
    *,
    num_processors: int = 4,
    check_interval: int = 0,
    seed: int = 0,
) -> list[ComparisonRow]:
    """Run the same logical workload on every protocol."""
    rows = []
    for protocol in protocols:
        wpb = 1 if protocol == "rudolph-segall" else 4
        config = SystemConfig(
            num_processors=num_processors,
            protocol=protocol,
            strict_verify=protocol != "write-through",
            cache=CacheConfig(words_per_block=wpb, num_blocks=64),
            seed=seed,
        )
        programs = make_programs(config, default_style(protocol))
        stats = run_workload(config, programs, check_interval=check_interval)
        rows.append(ComparisonRow.from_stats(protocol, stats))
    return rows


def render_comparison(rows: Sequence[ComparisonRow],
                      title: str = "Protocol comparison") -> str:
    return render_table(
        ["protocol", "cycles", "bus cycles", "bus util",
         "failed attempts", "acquisitions", "stale reads"],
        [
            [r.protocol, r.cycles, r.bus_busy_cycles,
             f"{r.bus_utilization:.0%}", r.failed_lock_attempts,
             r.lock_acquisitions, r.stale_reads]
            for r in rows
        ],
        title=title,
    )
