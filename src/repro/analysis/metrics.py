"""Derived metrics over :class:`~repro.sim.stats.SimStats`.

Each bench reports through these helpers so the definitions of
"bus cycles per acquisition" etc. live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import SimStats


@dataclass(frozen=True)
class LockMetrics:
    acquisitions: int
    bus_cycles_per_acquisition: float
    failed_attempts_per_acquisition: float
    mean_wait_cycles: float
    wait_work_fraction: float  # fraction of wait time spent productive


def lock_metrics(stats: SimStats) -> LockMetrics:
    acq = stats.total_lock_acquisitions
    waits = stats.total_wait_cycles
    work = sum(p.wait_work_cycles for p in stats.processors.values())
    return LockMetrics(
        acquisitions=acq,
        bus_cycles_per_acquisition=stats.bus_busy_cycles / acq if acq else 0.0,
        failed_attempts_per_acquisition=(
            stats.failed_lock_attempts / acq if acq else 0.0
        ),
        mean_wait_cycles=waits / acq if acq else 0.0,
        wait_work_fraction=work / waits if waits else 0.0,
    )


@dataclass(frozen=True)
class TrafficMetrics:
    total_transactions: int
    bus_busy_cycles: int
    bus_utilization: float
    cycles_per_reference: float
    word_write_transactions: int
    fetch_transactions: int


def traffic_metrics(stats: SimStats) -> TrafficMetrics:
    refs = stats.total_reads + stats.total_writes
    word_writes = stats.txn_counts.get("WRITE_WORD", 0) + stats.txn_counts.get(
        "UPDATE_WORD", 0
    )
    fetches = (
        stats.txn_counts.get("READ_BLOCK", 0)
        + stats.txn_counts.get("READ_EXCL", 0)
        + stats.txn_counts.get("READ_LOCK", 0)
    )
    return TrafficMetrics(
        total_transactions=stats.total_transactions,
        bus_busy_cycles=stats.bus_busy_cycles,
        bus_utilization=stats.bus_utilization,
        cycles_per_reference=stats.bus_busy_cycles / refs if refs else 0.0,
        word_write_transactions=word_writes,
        fetch_transactions=fetches,
    )


def processor_utilization(stats: SimStats) -> float:
    """Fraction of processor cycles spent doing useful work."""
    total = sum(p.total_cycles for p in stats.processors.values())
    busy = stats.total_processor_busy_cycles
    return busy / total if total else 0.0


def speedup(baseline_cycles: int, cycles: int) -> float:
    if cycles == 0:
        return float("inf")
    return baseline_cycles / cycles
