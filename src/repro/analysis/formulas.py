"""Analytic formulas from Bitar (1985), as cited by the paper.

The paper quotes three quantitative results derived from A.J. Smith's
trace statistics:

* **Feature 3** -- the frequency of *changing* a block's dirty status (a
  write hit to a clean block) is 0.2% to 1.2% of memory references, so
  non-identical directories "are probably not warranted";
* **Feature 4** -- the fractional bus-traffic increase of gaining write
  privilege by a word write-through instead of a one-cycle invalidation
  "appears to be much less than 1/n" for n-word blocks;
* **Feature 5** -- likewise for not fetching unshared data with write
  privilege on a read miss.

Smith's traces are not available; these formulas reproduce the *analysis*
and the benches additionally measure the same quantities on synthetic
streams with Smith's published aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import TimingConfig


def write_hit_to_clean_frequency(miss_ratio: float,
                                 written_block_fraction: float) -> float:
    """Frequency of clean->dirty status changes per memory reference.

    A resident block changes status from clean to dirty at most once per
    residency (every later write hit finds it already dirty), so the
    frequency of status *changes* is bounded by the miss ratio times the
    fraction of block residencies that get written at all:

        f = m * w_b

    With Smith's data (miss ratios of roughly 1%-3% and 20%-40% of
    resident blocks written) this yields the paper's 0.2%-1.2% range.
    """
    if not 0 <= miss_ratio <= 1:
        raise ValueError("miss_ratio must be in [0, 1]")
    if not 0 <= written_block_fraction <= 1:
        raise ValueError("written_block_fraction must be in [0, 1]")
    return miss_ratio * written_block_fraction


def smith_frequency_range() -> tuple[float, float]:
    """The 0.2%-1.2% range Bitar (1985) derives from Smith's data."""
    low = write_hit_to_clean_frequency(miss_ratio=0.01, written_block_fraction=0.2)
    high = write_hit_to_clean_frequency(miss_ratio=0.03, written_block_fraction=0.4)
    return (low, high)


@dataclass(frozen=True)
class TrafficIncrease:
    """Fractional bus-cycle increase of a design option, with the paper's
    1/n bound for comparison."""

    fraction: float
    bound: float  # 1/n

    @property
    def well_under_bound(self) -> bool:
        return self.fraction < self.bound


def invalidation_signal_saving(
    *,
    words_per_block: int,
    upgrades_per_reference: float,
    references_per_fetch: float,
    timing: TimingConfig | None = None,
) -> TrafficIncrease:
    """Feature 4: extra traffic of write-through upgrades vs a one-cycle
    invalidate signal, as a fraction of fetch traffic.

    A protocol without the invalidate signal pays a word write
    (``word_write_cycles``) where one with it pays ``invalidate_cycles``;
    amortized over the block fetches that dominate traffic, the fraction
    is much less than 1/n for n-word blocks because upgrades are far
    rarer than fetches.
    """
    t = timing or TimingConfig()
    extra_per_upgrade = t.word_write_cycles() - t.invalidate_cycles
    fetch_cycles = t.memory_block_cycles(words_per_block)
    extra_per_fetch = (
        upgrades_per_reference * references_per_fetch * extra_per_upgrade
    )
    return TrafficIncrease(
        fraction=extra_per_fetch / fetch_cycles,
        bound=1.0 / words_per_block,
    )


def fetch_for_write_saving(
    *,
    words_per_block: int,
    read_miss_then_write_fraction: float,
    timing: TimingConfig | None = None,
) -> TrafficIncrease:
    """Feature 5: extra traffic of *not* fetching unshared data for write
    privilege on a read miss.

    Without the feature, a read miss later written costs one extra
    invalidation/upgrade transaction; with it, nothing.  As a fraction of
    the block fetch itself this is (upgrade cycles / fetch cycles) times
    the probability the fetched block is written, which is well under 1/n.
    """
    t = timing or TimingConfig()
    fetch_cycles = t.memory_block_cycles(words_per_block)
    extra = read_miss_then_write_fraction * t.invalidate_cycles
    return TrafficIncrease(
        fraction=extra / fetch_cycles,
        bound=1.0 / words_per_block,
    )


def fragmentation_transfer_cost(
    *,
    words_per_block: int,
    atom_words: int,
    transfer_unit_words: int | None,
    timing: TimingConfig | None = None,
) -> int:
    """Section D.3: bus cycles to move an atom between caches.

    With whole-block transfers the entire block moves even when the atom
    is smaller; with transfer units only the units covering the atom (and
    dirty units) move.
    """
    t = timing or TimingConfig()
    if transfer_unit_words is None:
        words = words_per_block
    else:
        units = -(-atom_words // transfer_unit_words)
        words = min(units * transfer_unit_words, words_per_block)
    return t.bus_address_cycles + t.cache_supply_latency + words * t.word_transfer_cycles
