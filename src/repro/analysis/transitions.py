"""Figure 10: the proposal's cache-state transition diagram.

The arcs are enumerated by *driving the implementation*: for every start
state a fresh two-cache system is set up, the line is brought to that
state by a scripted op sequence, the stimulus is applied, and the
resulting state recorded.  ``EXPECTED_PROCESSOR_ARCS`` and
``EXPECTED_BUS_ARCS`` transcribe the figure (processor arcs carry the
third label field, the status in other caches, exactly as the figure's
arc labels do); tests assert the enumeration matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.state import CacheState
from repro.common.errors import ProgramError
from repro.processor import isa
from repro.sim.harness import ManualSystem

BLOCK = 0

#: Environment field of a processor arc label: what other caches hold.
ALONE = "alone"  # no other cache has the block
SHARED = "shared"  # another cache holds a read copy
DIRTY_ELSEWHERE = "dirty-elsewhere"  # another cache is a dirty source
LOCKED_ELSEWHERE = "locked-elsewhere"

#: (start state, processor request, other-cache status) -> end state.
#: "wait" means the access is refused and the cache busy-waits (note 1 of
#: the figure); the line stays INVALID.
EXPECTED_PROCESSOR_ARCS: dict[tuple[CacheState, str, str], CacheState | str] = {
    (CacheState.INVALID, "read", ALONE): CacheState.WRITE_CLEAN,  # Figure 1
    (CacheState.INVALID, "read", SHARED): CacheState.READ_SOURCE_CLEAN,
    (CacheState.INVALID, "read", DIRTY_ELSEWHERE): CacheState.READ_SOURCE_DIRTY,
    (CacheState.INVALID, "write", ALONE): CacheState.WRITE_DIRTY,
    (CacheState.INVALID, "write", SHARED): CacheState.WRITE_DIRTY,
    (CacheState.INVALID, "write", DIRTY_ELSEWHERE): CacheState.WRITE_DIRTY,
    (CacheState.INVALID, "lock", ALONE): CacheState.LOCK,
    (CacheState.INVALID, "lock", SHARED): CacheState.LOCK,
    (CacheState.INVALID, "lock", DIRTY_ELSEWHERE): CacheState.LOCK,
    (CacheState.INVALID, "lock", LOCKED_ELSEWHERE): "wait",
    (CacheState.READ, "read", SHARED): CacheState.READ,
    (CacheState.READ, "write", SHARED): CacheState.WRITE_DIRTY,
    (CacheState.READ, "lock", SHARED): CacheState.LOCK,
    (CacheState.READ_SOURCE_CLEAN, "read", SHARED): CacheState.READ_SOURCE_CLEAN,
    (CacheState.READ_SOURCE_CLEAN, "write", SHARED): CacheState.WRITE_DIRTY,
    (CacheState.READ_SOURCE_CLEAN, "lock", SHARED): CacheState.LOCK,
    (CacheState.READ_SOURCE_DIRTY, "read", SHARED): CacheState.READ_SOURCE_DIRTY,
    (CacheState.READ_SOURCE_DIRTY, "write", SHARED): CacheState.WRITE_DIRTY,
    (CacheState.READ_SOURCE_DIRTY, "lock", SHARED): CacheState.LOCK,
    (CacheState.WRITE_CLEAN, "read", ALONE): CacheState.WRITE_CLEAN,
    (CacheState.WRITE_CLEAN, "write", ALONE): CacheState.WRITE_DIRTY,
    (CacheState.WRITE_CLEAN, "lock", ALONE): CacheState.LOCK,
    (CacheState.WRITE_DIRTY, "read", ALONE): CacheState.WRITE_DIRTY,
    (CacheState.WRITE_DIRTY, "write", ALONE): CacheState.WRITE_DIRTY,
    (CacheState.WRITE_DIRTY, "lock", ALONE): CacheState.LOCK,
    (CacheState.LOCK, "read", ALONE): CacheState.LOCK,
    (CacheState.LOCK, "write", ALONE): CacheState.LOCK,
    (CacheState.LOCK, "unlock", ALONE): CacheState.WRITE_DIRTY,  # Figure 8
    (CacheState.LOCK_WAITER, "read", ALONE): CacheState.LOCK_WAITER,
    (CacheState.LOCK_WAITER, "write", ALONE): CacheState.LOCK_WAITER,
    (CacheState.LOCK_WAITER, "unlock", ALONE): CacheState.WRITE_DIRTY,  # + bcast
}

#: (start state, snooped bus request) -> end state.
EXPECTED_BUS_ARCS: dict[tuple[CacheState, str], CacheState] = {
    (CacheState.READ, "read"): CacheState.READ,
    (CacheState.READ, "read-excl"): CacheState.INVALID,
    (CacheState.READ, "read-lock"): CacheState.INVALID,
    (CacheState.READ, "upgrade"): CacheState.INVALID,
    (CacheState.READ_SOURCE_CLEAN, "read"): CacheState.READ,  # source moves
    (CacheState.READ_SOURCE_CLEAN, "read-excl"): CacheState.INVALID,
    (CacheState.READ_SOURCE_CLEAN, "read-lock"): CacheState.INVALID,
    (CacheState.READ_SOURCE_CLEAN, "upgrade"): CacheState.INVALID,
    (CacheState.READ_SOURCE_DIRTY, "read"): CacheState.READ,
    (CacheState.READ_SOURCE_DIRTY, "read-excl"): CacheState.INVALID,
    (CacheState.READ_SOURCE_DIRTY, "read-lock"): CacheState.INVALID,
    (CacheState.WRITE_CLEAN, "read"): CacheState.READ,
    (CacheState.WRITE_CLEAN, "read-excl"): CacheState.INVALID,
    (CacheState.WRITE_CLEAN, "read-lock"): CacheState.INVALID,
    (CacheState.WRITE_DIRTY, "read"): CacheState.READ,
    (CacheState.WRITE_DIRTY, "read-excl"): CacheState.INVALID,
    (CacheState.WRITE_DIRTY, "read-lock"): CacheState.INVALID,
    (CacheState.LOCK, "read"): CacheState.LOCK_WAITER,  # Figure 7
    (CacheState.LOCK, "read-excl"): CacheState.LOCK_WAITER,
    (CacheState.LOCK, "read-lock"): CacheState.LOCK_WAITER,
    (CacheState.LOCK_WAITER, "read"): CacheState.LOCK_WAITER,
    (CacheState.LOCK_WAITER, "read-excl"): CacheState.LOCK_WAITER,
    (CacheState.LOCK_WAITER, "read-lock"): CacheState.LOCK_WAITER,
}


@dataclass(frozen=True)
class Arc:
    start: CacheState
    stimulus: str
    environment: str
    end: CacheState | str


def _force_state(sys: ManualSystem, state: CacheState) -> None:
    """Bring cache0's line for BLOCK to ``state`` by scripted ops."""
    if state is CacheState.INVALID:
        return
    if state is CacheState.WRITE_CLEAN:
        sys.run_op(0, isa.read(BLOCK))  # Figure 1: alone -> write privilege
    elif state is CacheState.WRITE_DIRTY:
        sys.run_op(0, isa.write(BLOCK))
    elif state is CacheState.LOCK:
        sys.run_op(0, isa.lock(BLOCK))
    elif state is CacheState.LOCK_WAITER:
        sys.run_op(0, isa.lock(BLOCK))
        # Another cache requests it and is refused (Figure 7).
        sys.submit(1, isa.lock(BLOCK))
        sys.drain()
    elif state is CacheState.READ:
        # Become source, then let cache1 fetch: cache1 takes source status
        # and cache0 keeps a plain read copy (Feature 8 LRU).
        sys.run_op(0, isa.read(BLOCK))  # WRITE_CLEAN
        sys.run_op(1, isa.read(BLOCK))  # cache1 becomes RSC; cache0 -> READ
    elif state is CacheState.READ_SOURCE_CLEAN:
        sys.run_op(1, isa.read(BLOCK))  # cache1 alone -> WRITE_CLEAN
        sys.run_op(0, isa.read(BLOCK))  # cache0 fetches: RSC, cache1 -> READ
    elif state is CacheState.READ_SOURCE_DIRTY:
        sys.run_op(1, isa.write(BLOCK))  # cache1 dirty
        sys.run_op(0, isa.read(BLOCK))  # cache0: READ_SOURCE_DIRTY
    else:
        raise ProgramError(f"no recipe for state {state}")
    actual = sys.line_state(0, BLOCK)
    if actual is not state:
        raise ProgramError(f"recipe for {state} produced {actual}")


def _environment_of(state: CacheState) -> str:
    """The other-cache status implied by the recipe for ``state``."""
    if state in (CacheState.READ, CacheState.READ_SOURCE_CLEAN,
                 CacheState.READ_SOURCE_DIRTY):
        return SHARED
    return ALONE


_PROC_OPS = {
    "read": isa.read,
    "write": isa.write,
    "lock": isa.lock,
    "unlock": isa.unlock,
}

_BUS_STIMULI = {
    # Ops cache1 performs to put the given request on the bus (cache1 must
    # not hold the block so its op generates a fetch).
    "read": isa.read,
    "read-excl": isa.write,
    "read-lock": isa.lock,
}


def enumerate_processor_arcs(protocol: str = "bitar-despain") -> list[Arc]:
    """Observe every (state, processor-request) transition of the protocol.

    The resulting state is recorded at the instant the operation completes
    (or is refused), before any further bus activity."""
    from repro.cache.cache import AccessStatus

    arcs: list[Arc] = []
    for (state, request, env) in sorted(
        EXPECTED_PROCESSOR_ARCS, key=lambda k: (k[0].value, k[1], k[2])
    ):
        sys = ManualSystem(protocol=protocol, n_caches=3)
        if env == SHARED and state is CacheState.INVALID:
            sys.run_op(1, isa.read(BLOCK))
        elif env == DIRTY_ELSEWHERE:
            sys.run_op(1, isa.write(BLOCK))
        elif env == LOCKED_ELSEWHERE:
            sys.run_op(1, isa.lock(BLOCK))
        _force_state(sys, state)
        op = _PROC_OPS[request](BLOCK)
        status = sys.submit(0, op)
        end: CacheState | str
        if status is AccessStatus.DONE:
            end = sys.line_state(0, BLOCK)
        else:
            end = _pump_until_settled(sys, cache_idx=0)
        arcs.append(Arc(state, request, env, end))
    return arcs


def _pump_until_settled(sys: ManualSystem, cache_idx: int,
                        max_cycles: int = 500) -> CacheState | str:
    """Pump the bus until the pending op completes or settles into a lock
    wait; return the resulting state (or the "wait" marker)."""
    cache = sys.caches[cache_idx]
    for _ in range(max_cycles):
        sys.step()
        if cache.take_completion() is not None:
            return sys.line_state(cache_idx, BLOCK)
        if cache.waiting_for_lock and not sys.bus.busy and not any(
            c.has_bus_request() for c in sys.caches
        ):
            return "wait"
    raise ProgramError("stimulus did not settle")


def enumerate_bus_arcs(protocol: str = "bitar-despain") -> list[Arc]:
    """Observe every (state, snooped-bus-request) transition."""
    arcs: list[Arc] = []
    for (state, request) in sorted(
        EXPECTED_BUS_ARCS, key=lambda k: (k[0].value, k[1])
    ):
        sys = ManualSystem(protocol=protocol, n_caches=4)
        if request == "upgrade":
            # The upgrader must hold a read copy without disturbing
            # cache0's target state: make cache3 a reader first, then
            # bring cache0 to the start state (cache0's own fetch restores
            # its source-ness last), then have cache3 write.
            sys.run_op(3, isa.read(BLOCK))
            _force_state(sys, state)
            if sys.line_state(0, BLOCK) is not state:
                raise ProgramError(f"setup for ({state}, upgrade) failed")
            sys.submit(3, isa.write(BLOCK))
            sys.drain()
            sys.caches[3].take_completion()
        else:
            _force_state(sys, state)
            op = _BUS_STIMULI[request](BLOCK)
            sys.submit(2, op)
            sys.drain()
            sys.caches[2].take_completion()
        arcs.append(Arc(state, request, "", sys.line_state(0, BLOCK)))
    return arcs


def verify_figure10(protocol: str = "bitar-despain") -> list[str]:
    """Return the list of mismatches between the implementation's arcs and
    the figure's; empty means the diagram is reproduced exactly."""
    problems: list[str] = []
    for arc in enumerate_processor_arcs(protocol):
        expected = EXPECTED_PROCESSOR_ARCS[(arc.start, arc.stimulus, arc.environment)]
        if arc.end != expected:
            problems.append(
                f"processor arc {arc.start.value} --{arc.stimulus}/"
                f"{arc.environment}--> {arc.end} (expected {expected})"
            )
    for arc in enumerate_bus_arcs(protocol):
        expected = EXPECTED_BUS_ARCS[(arc.start, arc.stimulus)]
        if arc.end is not expected:
            problems.append(
                f"bus arc {arc.start.value} --{arc.stimulus}--> "
                f"{arc.end} (expected {expected.value})"
            )
    return problems


def render_figure10() -> str:
    from repro.analysis.report import render_table

    proc_rows = [
        [a.start.value, a.stimulus, a.environment,
         a.end if isinstance(a.end, str) else a.end.value]
        for a in enumerate_processor_arcs()
    ]
    bus_rows = [
        [a.start.value, a.stimulus, a.end.value]
        for a in enumerate_bus_arcs()
    ]
    top = render_table(
        ["state", "processor request", "others hold", "next state"],
        proc_rows, title="Figure 10 (processor-induced transitions)",
    )
    bottom = render_table(
        ["state", "bus request", "next state"],
        bus_rows, title="Figure 10 (bus-induced transitions)",
    )
    return top + "\n\n" + bottom
