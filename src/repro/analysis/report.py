"""Plain-text table rendering for bench output.

The benches print the paper's tables as monospace grids; these helpers
keep the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    align_left_first: bool = True,
) -> str:
    """Render a list of rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if i == 0 and align_left_first:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)


def render_series(name: str, points: Sequence[tuple[object, object]]) -> str:
    """Render an (x, y) series the way the paper's figures would tabulate."""
    lines = [name]
    for x, y in points:
        lines.append(f"  {x!s:>12} : {y}")
    return "\n".join(lines)


def format_ratio(numerator: float, denominator: float) -> str:
    if denominator == 0:
        return "n/a"
    return f"{numerator / denominator:.2f}x"
