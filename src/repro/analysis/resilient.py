"""The resilient sweep executor.

:meth:`repro.analysis.sweeps.Sweep.execute` delegates here.  Where the
old executor was ``pool.map`` -- one bad point aborted the whole sweep
and discarded every completed result, and a hung worker blocked forever
-- this one runs each point as its own future under an
:class:`ExecutionPolicy`:

* **per-point wall-clock timeouts** -- a point that exceeds
  ``policy.timeout`` seconds is declared hung; its worker pool is torn
  down (the only way to preempt a stuck ``ProcessPoolExecutor`` worker)
  and rebuilt, and every other in-flight point is requeued untouched;
* **bounded retries** -- a point that raises, returns corrupt
  statistics, or times out is retried up to ``policy.max_attempts``
  times with seeded exponential backoff + jitter (deterministic per
  ``(seed, index, attempt)``, so two runs with the same seed retry
  identically);
* **broken-pool recovery** -- a worker death (e.g. SIGKILL) breaks the
  pool; the executor respawns it, requeues the in-flight points, and
  uses the :class:`~repro.faults.FaultPlan` (when one is injected) to
  attribute the death to the killer point rather than penalizing
  innocent neighbours.  A point implicated in ``max_attempts`` pool
  breaks is **quarantined**;
* **graceful degradation** -- with ``policy.keep_going`` every healthy
  point's result survives; failed points carry a terminal status
  (``failed`` / ``timeout`` / ``quarantined``) and ``NaN`` metric
  values.  Without it, the first exhausted point raises
  :class:`~repro.common.errors.SweepPointError` naming the point.

Retry, timeout, and restart counts are published into a
:class:`~repro.obs.registry.MetricRegistry` whose snapshot rides on the
sweep result.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.common.errors import FaultInjected, SweepPointError
from repro.faults.plan import CorruptStats, FaultKind, FaultPlan, _roll
from repro.obs.registry import MetricRegistry

# -- statuses ---------------------------------------------------------------

#: The point ran and produced valid statistics.
STATUS_OK = "ok"
#: The point exhausted its attempts raising or returning corrupt stats.
STATUS_FAILED = "failed"
#: The point exhausted its attempts exceeding the wall-clock timeout.
STATUS_TIMEOUT = "timeout"
#: The point was implicated in repeated worker-pool deaths.
STATUS_QUARANTINED = "quarantined"

POINT_STATUSES = (STATUS_OK, STATUS_FAILED, STATUS_TIMEOUT,
                  STATUS_QUARANTINED)

#: Retry reasons (metric label values).
_REASON_RAISE = "raise"
_REASON_CORRUPT = "corrupt"
_REASON_TIMEOUT = "timeout"
_REASON_KILL = "kill"

_REASON_STATUS = {
    _REASON_RAISE: STATUS_FAILED,
    _REASON_CORRUPT: STATUS_FAILED,
    _REASON_TIMEOUT: STATUS_TIMEOUT,
    _REASON_KILL: STATUS_QUARANTINED,
}


@dataclass(frozen=True)
class ExecutionPolicy:
    """How hard the executor tries before giving up on a point."""

    #: Attributed executions of one point before it is finalized.
    max_attempts: int = 2
    #: Per-point wall-clock limit in seconds (None = unlimited); only
    #: enforceable with ``jobs > 1`` (a serial run cannot be preempted).
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    backoff_jitter: float = 0.5
    #: Seeds the backoff jitter (and the fault plan's probabilistic
    #: draws go through the plan's own seed).
    seed: int = 0
    #: Record failures and keep sweeping instead of raising on the
    #: first exhausted point.
    keep_going: bool = False
    #: Worker-pool rebuilds tolerated before the sweep gives up.
    max_pool_restarts: int = 5
    #: Chaos mode: inject these faults into the workers.
    faults: FaultPlan | None = None
    #: Future-polling granularity; bounds timeout-detection latency.
    poll_interval: float = 0.05

    def backoff_delay(self, index: int, failures: int) -> float:
        """Deterministic backoff before retry ``failures`` of point
        ``index``: exponential in the failure count, jittered by a hash
        of ``(seed, index, failures)`` -- no shared RNG, so the delay
        does not depend on completion order."""
        base = min(self.backoff_base * (2 ** max(0, failures - 1)),
                   self.backoff_max)
        return base * (1.0 + self.backoff_jitter * _roll(
            self.seed, index, failures))

    def backoff_schedule(self, index: int) -> list[float]:
        """Every delay point ``index`` would see (for tests/inspection)."""
        return [self.backoff_delay(index, n)
                for n in range(1, self.max_attempts)]


@dataclass
class PointOutcome:
    """Per-point execution verdict, serialized into sweep results."""

    index: int
    x: object
    status: str = STATUS_OK
    #: Attributed executions (pool-break requeues of innocent points do
    #: not count, keeping this deterministic under a fault seed).
    attempts: int = 1
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "x": self.x if isinstance(self.x, (int, float, str)) else str(self.x),
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }


# -- worker side ------------------------------------------------------------


@dataclass(frozen=True)
class _WorkerFailure:
    """An exception, reduced to plain data so it pickles back safely."""

    exc_type: str
    message: str


#: The point callable, installed once per worker by :func:`_init_worker`
#: so it is pickled once per process instead of once per submitted point.
_WORKER_RUN: Callable | None = None


def _init_worker(run: Callable, warmup: Callable | None) -> None:
    """Process-pool initializer: install the point callable and run the
    optional warmup (config/protocol construction, heavy imports) so the
    first point of every worker pays no cold-start cost."""
    global _WORKER_RUN
    _WORKER_RUN = run
    if warmup is not None:
        try:
            warmup()
        except Exception:  # noqa: BLE001 - warmup is best-effort
            pass


def _pool_point(x: object, index: int, attempt: int,
                faults: FaultPlan | None):
    """Worker-side wrapper over the initializer-installed callable."""
    assert _WORKER_RUN is not None
    return _execute_point(_WORKER_RUN, x, index, attempt, faults)


def _pool_chunk(items: "list[tuple[int, object, int]]"):
    """Run several ``(index, x, attempt)`` points in one worker call.

    Used only by the fault-free, timeout-free fast path, where per-point
    preemption and attribution are unnecessary -- one submission per
    chunk removes most of the executor's IPC and future overhead."""
    assert _WORKER_RUN is not None
    return [_execute_point(_WORKER_RUN, x, index, attempt, None)
            for index, x, attempt in items]


def _execute_point(run: Callable, x: object, index: int, attempt: int,
                   faults: FaultPlan | None, in_worker: bool = True):
    """Run one point (module-level so the pool can pickle it).

    Faults fire *instead of* the real run.  In the serial path
    (``in_worker=False``) a ``kill`` degrades to a ``raise`` -- dying
    would take the orchestrator down with it.
    """
    try:
        if faults is not None:
            kind = faults.fault_for(index, attempt)
            if kind is FaultKind.KILL and not in_worker:
                kind = FaultKind.RAISE
            if kind is not None:
                from repro.faults.plan import apply_fault

                return apply_fault(kind, index=index, attempt=attempt,
                                   hang_seconds=faults.hang_seconds)
        return run(x)
    except Exception as exc:  # noqa: BLE001 - reduced to data for the parent
        return _WorkerFailure(exc_type=type(exc).__name__, message=str(exc))


def _classify(result) -> str | None:
    """None when ``result`` is usable, else the retry reason."""
    from repro.analysis.sweeps import ObservedPoint
    from repro.sim.stats import SimStats

    if isinstance(result, _WorkerFailure):
        # An engine-watchdog abort inside the point is a timeout, not a
        # generic failure -- same verdict as an executor-level hang.
        if result.exc_type == "WatchdogTimeout":
            return _REASON_TIMEOUT
        return _REASON_RAISE
    if isinstance(result, ObservedPoint):
        result = result.stats
    if isinstance(result, CorruptStats) or not isinstance(result, SimStats):
        return _REASON_CORRUPT
    cycles = getattr(result, "cycles", None)
    if not isinstance(cycles, int) or cycles < 0:
        return _REASON_CORRUPT
    return None


# -- the executor -----------------------------------------------------------


@dataclass
class _Task:
    index: int
    x: object
    attempt: int = 1
    #: Attributed failures so far (raise/corrupt/timeout/kill).
    failures: int = 0
    #: Unattributed pool breaks this point was caught in.
    pool_failures: int = 0
    started_at: float | None = None
    last_error: str | None = None


@dataclass
class ExecutionReport:
    """What :func:`execute_points` hands back to the Sweep."""

    outcomes: list[PointOutcome]
    #: Per-point payloads (run() return values) in sweep order; ``None``
    #: for points that did not finish OK.
    payloads: list
    registry: MetricRegistry = field(default_factory=MetricRegistry)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def summary(self) -> dict:
        """Deterministic plain-data view of the resilience counters."""
        statuses: dict[str, int] = {}
        for outcome in self.outcomes:
            statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
        retries: dict[str, int] = {}
        retry_counter = self.registry.get("sweep_point_retries_total")
        if retry_counter is not None:
            for key, value in sorted(retry_counter.values.items()):
                retries[key[0]] = int(value)
        restarts: dict[str, int] = {}
        restart_counter = self.registry.get("sweep_pool_restarts_total")
        if restart_counter is not None:
            for key, value in sorted(restart_counter.values.items()):
                restarts[key[0]] = int(value)
        return {
            "statuses": {s: statuses[s] for s in POINT_STATUSES
                         if s in statuses},
            "retries": retries,
            "pool_restarts": restarts,
        }


def execute_points(
    run: Callable,
    xs: Sequence,
    *,
    jobs: int = 1,
    policy: ExecutionPolicy | None = None,
    warmup: Callable | None = None,
    progress: Callable | None = None,
) -> ExecutionReport:
    """Execute every point of ``xs`` under ``policy``; the entry point
    used by :meth:`repro.analysis.sweeps.Sweep.execute`.

    ``warmup`` (picklable, no arguments) runs once in every worker
    process before its first point -- the place for config/protocol
    construction and heavy imports.

    ``progress`` (when given) is called in the orchestrating process as
    ``progress(done, total, statuses)`` each time a point reaches a
    terminal status, with ``statuses`` a ``{status: count}`` view of the
    executor's own counters."""
    policy = policy or ExecutionPolicy()
    executor = _Executor(run, xs, policy, jobs, warmup=warmup,
                         progress=progress)
    return executor.execute()


class _Executor:
    def __init__(self, run: Callable, xs: Sequence,
                 policy: ExecutionPolicy, jobs: int,
                 warmup: Callable | None = None,
                 progress: Callable | None = None) -> None:
        self.run = run
        self.xs = list(xs)
        self.policy = policy
        self.jobs = jobs
        self.warmup = warmup
        self.progress = progress
        self.registry = MetricRegistry()
        self._retries = self.registry.counter(
            "sweep_point_retries_total",
            "retries the sweep executor performed, by reason",
            ("reason",))
        self._restarts = self.registry.counter(
            "sweep_pool_restarts_total",
            "worker-pool rebuilds, by cause",
            ("cause",))
        self._points = self.registry.counter(
            "sweep_points_total",
            "finalized sweep points, by status",
            ("status",))
        self.outcomes: list[PointOutcome | None] = [None] * len(self.xs)
        self.payloads: list = [None] * len(self.xs)
        self._abort: SweepPointError | None = None

    # -- shared bookkeeping ------------------------------------------------

    def _finalize(self, task: _Task, status: str, payload=None) -> None:
        outcome = PointOutcome(index=task.index, x=task.x, status=status,
                               attempts=max(task.attempt, 1),
                               error=task.last_error
                               if status != STATUS_OK else None)
        self.outcomes[task.index] = outcome
        self.payloads[task.index] = payload
        self._points.inc(status=status)
        if self.progress is not None:
            statuses = {s: int(self._points.value(status=s))
                        for s in POINT_STATUSES}
            self.progress(sum(statuses.values()), len(self.xs), statuses)
        if status != STATUS_OK and not self.policy.keep_going \
                and self._abort is None:
            self._abort = SweepPointError(
                f"sweep point {task.index} (x={task.x!r}) {status} after "
                f"{outcome.attempts} attempt(s): {task.last_error}",
                x=task.x, index=task.index, attempts=outcome.attempts,
            )

    def _record_failure(self, task: _Task, reason: str, error: str) -> tuple[bool, float]:
        """Count one attributed failure; returns ``(retry, delay)``."""
        task.failures += 1
        task.last_error = error
        self._retries.inc(reason=reason)
        if task.failures >= self.policy.max_attempts:
            self._finalize(task, _REASON_STATUS[reason])
            return False, 0.0
        task.attempt += 1
        return True, self.policy.backoff_delay(task.index, task.failures)

    def _handle_result(self, task: _Task, result) -> tuple[bool, float]:
        """Classify a completed attempt; returns ``(retry, delay)``."""
        reason = _classify(result)
        if reason is None:
            self._finalize(task, STATUS_OK, payload=result)
            return False, 0.0
        if isinstance(result, _WorkerFailure):
            error = (f"point {task.index} (x={task.x!r}) raised "
                     f"{result.exc_type}: {result.message}")
        else:
            error = (f"point {task.index} (x={task.x!r}) returned corrupt "
                     f"statistics ({type(result).__name__})")
        return self._record_failure(task, reason, error)

    # -- serial path -------------------------------------------------------

    def _execute_serial(self) -> ExecutionReport:
        for index, x in enumerate(self.xs):
            task = _Task(index=index, x=x)
            while True:
                result = _execute_point(self.run, x, index, task.attempt,
                                        self.policy.faults, in_worker=False)
                retry, delay = self._handle_result(task, result)
                if not retry:
                    break
                if delay > 0:
                    time.sleep(delay)
            if self._abort is not None:
                raise self._abort
        return ExecutionReport(outcomes=list(self.outcomes),
                               payloads=list(self.payloads),
                               registry=self.registry)

    # -- parallel path -----------------------------------------------------

    def execute(self) -> ExecutionReport:
        if self.jobs <= 1:
            return self._execute_serial()
        if self.policy.timeout is None and self.policy.faults is None:
            # Nothing needs per-point preemption or kill attribution:
            # take the chunked fast path (one future per chunk of
            # points, not one per point).
            return self._execute_chunked()
        return self._execute_parallel()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs,
                                   initializer=_init_worker,
                                   initargs=(self.run, self.warmup))

    # -- chunked fast path (no timeout, no faults) -------------------------

    def _execute_chunked(self) -> ExecutionReport:
        """One future per *chunk* of points instead of one per point.

        Eligible only when the policy carries no per-point timeout and no
        fault plan, so a chunk never needs to be preempted or its worker
        death attributed to one point.  Chunks are dealt round-robin
        (``tasks[i::n]``), balancing mixed point sizes across workers;
        retries of failing points are resubmitted as single-point chunks.
        A broken pool is rebuilt (bounded by ``max_pool_restarts``) with
        every in-flight point requeued and charged one pool failure,
        matching the per-point path's quarantine accounting."""
        policy = self.policy
        pool = self._new_pool()
        restarts = 0
        try:
            tasks = [_Task(index=i, x=x) for i, x in enumerate(self.xs)]
            nchunks = max(1, min(len(tasks), self.jobs * 2))
            pending: dict = {}
            for chunk in (tasks[i::nchunks] for i in range(nchunks)):
                if not chunk:
                    continue
                future = pool.submit(
                    _pool_chunk,
                    [(t.index, t.x, t.attempt) for t in chunk])
                pending[future] = chunk
            while pending:
                if self._abort is not None:
                    break
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                retry_tasks: list[_Task] = []
                broken = False
                for future in done:
                    chunk = pending.pop(future)
                    try:
                        results = future.result()
                    except (BrokenProcessPool, RuntimeError):
                        broken = True
                        retry_tasks.extend(self._survive_chunk_break(chunk))
                        continue
                    except Exception as exc:  # noqa: BLE001
                        for task in chunk:
                            retry, _ = self._record_failure(
                                task, _REASON_RAISE,
                                f"point {task.index} (x={task.x!r}) "
                                f"failed in the pool: {exc}")
                            if retry:
                                retry_tasks.append(task)
                        continue
                    for task, result in zip(chunk, results):
                        retry, delay = self._handle_result(task, result)
                        if retry:
                            if delay > 0:
                                time.sleep(delay)
                            retry_tasks.append(task)
                if broken:
                    restarts += 1
                    self._restarts.inc(cause="broken")
                    for future, chunk in list(pending.items()):
                        retry_tasks.extend(self._survive_chunk_break(chunk))
                    pending.clear()
                    self._kill_pool(pool)
                    if restarts > policy.max_pool_restarts:
                        for task in retry_tasks:
                            task.last_error = (
                                task.last_error or
                                "worker pool kept breaking; sweep gave up")
                            self._finalize(task, STATUS_FAILED)
                        break
                    pool = self._new_pool()
                for task in retry_tasks:
                    future = pool.submit(
                        _pool_chunk, [(task.index, task.x, task.attempt)])
                    pending[future] = [task]
        finally:
            self._kill_pool(pool)
        if self._abort is not None:
            raise self._abort
        return ExecutionReport(outcomes=list(self.outcomes),
                               payloads=list(self.payloads),
                               registry=self.registry)

    def _survive_chunk_break(self, chunk: "list[_Task]") -> "list[_Task]":
        """Charge each point of a chunk caught in a pool death one pool
        failure; returns the points still eligible for requeue."""
        survivors = []
        for task in chunk:
            if self.outcomes[task.index] is not None:
                continue  # already finalized before the break
            task.pool_failures += 1
            if task.pool_failures >= self.policy.max_attempts:
                task.last_error = (
                    f"point {task.index} (x={task.x!r}) was in flight for "
                    f"{task.pool_failures} worker-pool deaths")
                self._finalize(task, STATUS_QUARANTINED)
                continue
            survivors.append(task)
        return survivors

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*, hung workers included."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead workers
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _unfinished(self, pending: dict, queue: deque,
                    delayed: list) -> list[_Task]:
        tasks = list(pending.values())
        tasks += [task for task in queue]
        tasks += [task for _, _, task in delayed]
        pending.clear()
        queue.clear()
        delayed.clear()
        return tasks

    def _requeue_after_break(self, tasks: list[_Task], queue: deque,
                             now: float, delayed: list,
                             order: "itertools.count") -> None:
        """Requeue survivors of a pool death, attributing the death via
        the fault plan when one is present."""
        faults = self.policy.faults
        attributed = faults is not None and any(
            faults.kills(task.index, task.attempt) for task in tasks)
        for task in tasks:
            task.started_at = None
            if faults is not None and faults.kills(task.index, task.attempt):
                retry, delay = self._record_failure(
                    task, _REASON_KILL,
                    f"point {task.index} (x={task.x!r}) killed its worker "
                    f"(attempt {task.attempt})")
                if retry:
                    delayed.append((now + delay, next(order), task))
                continue
            if attributed:
                # The plan names the killer; this point is innocent.
                queue.append(task)
                continue
            task.pool_failures += 1
            if task.pool_failures >= self.policy.max_attempts:
                task.last_error = (
                    f"point {task.index} (x={task.x!r}) was in flight for "
                    f"{task.pool_failures} worker-pool deaths")
                self._finalize(task, STATUS_QUARANTINED)
                continue
            queue.append(task)

    def _execute_parallel(self) -> ExecutionReport:
        policy = self.policy
        queue: deque[_Task] = deque(
            _Task(index=i, x=x) for i, x in enumerate(self.xs))
        delayed: list[tuple[float, int, _Task]] = []
        order = itertools.count()  # tie-break for identical ready times
        pending: dict = {}
        restarts = 0
        pool = self._new_pool()
        try:
            while queue or delayed or pending:
                if self._abort is not None:
                    break
                now = time.monotonic()
                if delayed:
                    delayed.sort()
                    while delayed and delayed[0][0] <= now:
                        queue.append(delayed.pop(0)[2])
                broken = False
                while queue:
                    task = queue.popleft()
                    try:
                        future = pool.submit(
                            _pool_point, task.x, task.index,
                            task.attempt, policy.faults)
                    except (BrokenProcessPool, RuntimeError):
                        queue.appendleft(task)
                        broken = True
                        break
                    task.started_at = None
                    pending[future] = task
                if not broken and pending:
                    timeout = policy.poll_interval
                    if delayed and not pending:
                        timeout = max(0.0, delayed[0][0] - now)
                    done, _ = wait(pending, timeout=timeout,
                                   return_when=FIRST_COMPLETED)
                    now = time.monotonic()
                    for future in done:
                        task = pending.pop(future)
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broken = True
                            pending[future] = task  # requeued with the rest
                            break
                        except Exception as exc:  # noqa: BLE001
                            retry, delay = self._record_failure(
                                task, _REASON_RAISE,
                                f"point {task.index} (x={task.x!r}) "
                                f"failed in the pool: {exc}")
                            if retry:
                                delayed.append((now + delay, next(order),
                                                task))
                            continue
                        retry, delay = self._handle_result(task, result)
                        if retry:
                            delayed.append((now + delay, next(order), task))
                elif not pending and delayed:
                    delayed.sort()
                    sleep_for = max(0.0, delayed[0][0] - time.monotonic())
                    if sleep_for:
                        time.sleep(min(sleep_for, policy.backoff_max))
                if broken:
                    restarts += 1
                    self._restarts.inc(cause="broken")
                    if restarts > policy.max_pool_restarts:
                        self._give_up(pending, queue, delayed)
                        break
                    tasks = self._unfinished(pending, queue, delayed)
                    self._kill_pool(pool)
                    self._requeue_after_break(tasks, queue,
                                              time.monotonic(), delayed,
                                              order)
                    pool = self._new_pool()
                    continue
                if policy.timeout is not None and pending:
                    self._check_timeouts(pending, queue, delayed, order)
                    if self._needs_restart:
                        self._needs_restart = False
                        restarts += 1
                        self._restarts.inc(cause="timeout")
                        if restarts > policy.max_pool_restarts:
                            self._give_up(pending, queue, delayed)
                            break
                        tasks = self._unfinished(pending, queue, delayed)
                        self._kill_pool(pool)
                        for task in tasks:
                            task.started_at = None
                            queue.append(task)
                        pool = self._new_pool()
        finally:
            self._kill_pool(pool)
        if self._abort is not None:
            raise self._abort
        return ExecutionReport(outcomes=list(self.outcomes),
                               payloads=list(self.payloads),
                               registry=self.registry)

    _needs_restart = False

    def _check_timeouts(self, pending: dict, queue: deque, delayed: list,
                        order: "itertools.count") -> None:
        """Declare over-deadline running futures hung.

        The hung tasks take an attributed timeout failure; everything
        else in flight is requeued untouched once the pool is rebuilt.
        """
        now = time.monotonic()
        hung: list = []
        for future, task in pending.items():
            if task.started_at is None and future.running():
                task.started_at = now
            elif (task.started_at is not None
                  and now - task.started_at > self.policy.timeout):
                hung.append(future)
        if not hung:
            return
        for future in hung:
            task = pending.pop(future)
            retry, delay = self._record_failure(
                task, _REASON_TIMEOUT,
                f"point {task.index} (x={task.x!r}) exceeded the "
                f"{self.policy.timeout}s wall-clock timeout "
                f"(attempt {task.attempt})")
            if retry:
                delayed.append((now + delay, next(order), task))
        self._needs_restart = True

    def _give_up(self, pending: dict, queue: deque, delayed: list) -> None:
        for task in self._unfinished(pending, queue, delayed):
            task.last_error = (task.last_error or
                               "worker pool kept breaking; sweep gave up")
            self._finalize(task, STATUS_FAILED)
