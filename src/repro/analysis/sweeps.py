"""Parameter-sweep utilities (numpy-backed).

The figure-style benches all share a shape: vary one parameter, run a
deterministic simulation per point (optionally over several seeds), and
extract metrics.  These helpers centralize that, with seed statistics for
the stochastic workload generators.

Sweep points are independent simulations, so they parallelize trivially:
``Sweep.execute(jobs=N)`` (or :func:`run_sweep_parallel`) fans the points
out over a :class:`~concurrent.futures.ProcessPoolExecutor`.  The ``run``
callable must then be picklable -- a module-level function, not a lambda
or closure; metric extraction always happens in the parent process, so
the ``metrics`` callables are unconstrained.

Per-point observability: a ``run`` callable may return an
:class:`ObservedPoint` instead of bare stats, carrying the point's
:class:`~repro.obs.core.ObsResult` (sample series, metric snapshot,
timeline).  ``ObsResult`` is plain data, so it survives pickling back
from the worker processes; after ``execute()`` the per-point results are
on :attr:`Sweep.observations` in sweep order.

Execution is resilient (see :mod:`repro.analysis.resilient`): pass an
:class:`~repro.analysis.resilient.ExecutionPolicy` to ``execute()`` for
per-point timeouts, bounded seeded retries, broken-pool recovery, fault
injection, and ``keep_going`` partial results.  A failed point's series
value is ``NaN``; its verdict is on :attr:`Sweep.outcomes`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.analysis.resilient import (
    ExecutionPolicy,
    ExecutionReport,
    PointOutcome,
    execute_points,
)
from repro.obs.core import ObsResult
from repro.sim.stats import SimStats


@dataclass(frozen=True)
class ObservedPoint:
    """One sweep point's stats plus its observability payload."""

    stats: SimStats
    obs: ObsResult | None = None


@dataclass
class SweepSeries:
    """One metric's values along a sweep."""

    name: str
    xs: np.ndarray
    values: np.ndarray

    def ratio_to(self, other: "SweepSeries") -> np.ndarray:
        if not np.array_equal(self.xs, other.xs):
            raise ValueError("series sampled at different points")
        with np.errstate(divide="ignore", invalid="ignore"):
            # x/0 is a signed infinity, 0/0 is NaN -- not +inf, which
            # used to smuggle a "ratio" out of two empty measurements.
            return np.where(
                other.values != 0,
                self.values / other.values,
                np.where(self.values == 0, np.nan,
                         np.sign(self.values) * np.inf),
            )

    @property
    def monotone_increasing(self) -> bool:
        return bool(np.all(np.diff(self.values) >= 0))

    @property
    def monotone_decreasing(self) -> bool:
        return bool(np.all(np.diff(self.values) <= 0))


@dataclass
class Sweep:
    """Run a simulation per x value and collect named metrics."""

    xs: Sequence
    run: Callable[[object], "SimStats | ObservedPoint"]
    metrics: dict[str, Callable[[SimStats], float]] = field(default_factory=dict)
    #: Per-point ObsResults (sweep order) after execute(); None for points
    #: whose run callable returned bare stats.
    observations: list = field(default_factory=list, init=False, repr=False)
    #: Per-point SimStats (sweep order) after execute(); None for points
    #: that did not finish OK under a ``keep_going`` policy.
    results: list = field(default_factory=list, init=False, repr=False)
    #: Per-point :class:`~repro.analysis.resilient.PointOutcome` verdicts.
    outcomes: list = field(default_factory=list, init=False, repr=False)
    #: Plain-data retry/timeout/restart counters from the last execute().
    resilience: dict = field(default_factory=dict, init=False, repr=False)
    #: The executor's MetricRegistry from the last execute().
    registry: object = field(default=None, init=False, repr=False)

    def execute(self, jobs: int = 1,
                policy: ExecutionPolicy | None = None,
                warmup: Callable | None = None,
                progress: Callable | None = None) -> dict[str, SweepSeries]:
        """Run every point (resiliently) and collect the metric series.

        ``policy`` configures retries, per-point timeouts, fault
        injection, and the ``keep_going`` partial-results mode; the
        default policy preserves the historical behaviour of failing the
        sweep on the first bad point -- except the failure is now a
        :class:`~repro.common.errors.SweepPointError` naming the point.

        ``warmup`` (picklable, no arguments) runs once per worker
        process before its first point -- use it to hoist config and
        protocol construction out of the per-point path.

        ``progress`` is called in this process as
        ``progress(done, total, statuses)`` each time a point reaches a
        terminal status -- the hook behind ``repro sweep --progress``.
        """
        if not self.metrics:
            raise ValueError("no metrics to collect")
        report = execute_points(self.run, self.xs, jobs=jobs, policy=policy,
                                warmup=warmup, progress=progress)
        return self._collect_report(report)

    def _collect_report(self, report: ExecutionReport) -> dict[str, SweepSeries]:
        self.outcomes = list(report.outcomes)
        self.resilience = report.summary()
        self.registry = report.registry
        series = self._collect(report.payloads)
        # Fold each observed point's metric snapshot into the sweep-level
        # registry.  The snapshots are plain data (that is how they cross
        # the worker-process pickle boundary); counters and histograms
        # merge additively, gauges stay per-point.
        for obs in self.observations:
            if obs is not None and obs.metrics:
                report.registry.merge_snapshot(obs.metrics)
        return series

    def _collect(
        self, results: "Sequence[SimStats | ObservedPoint | None]"
    ) -> dict[str, SweepSeries]:
        """Extract every metric from the per-point stats, in sweep order.

        ``None`` entries (points that failed under ``keep_going``)
        yield ``NaN`` series values -- a partial series downstream code
        can mask rather than an aborted sweep.
        """
        stats_list = [
            r.stats if isinstance(r, ObservedPoint) else r for r in results
        ]
        self.results = stats_list
        self.observations = [
            r.obs if isinstance(r, ObservedPoint) else None for r in results
        ]
        xs = np.asarray(list(self.xs), dtype=float)
        return {
            name: SweepSeries(
                name=name, xs=xs,
                values=np.asarray([float(extract(stats))
                                   if stats is not None else math.nan
                                   for stats in stats_list],
                                  dtype=float),
            )
            for name, extract in self.metrics.items()
        }


def run_sweep_parallel(sweep: Sweep, jobs: int,
                       policy: ExecutionPolicy | None = None,
                       warmup: Callable | None = None,
                       progress: Callable | None = None
                       ) -> dict[str, SweepSeries]:
    """Execute ``sweep`` with its points distributed over ``jobs`` worker
    processes (serial when ``jobs <= 1``).

    Results are identical to :meth:`Sweep.execute`: each point is a
    deterministic, independent simulation, and the series preserve sweep
    order regardless of completion order.
    """
    return sweep.execute(jobs=jobs, policy=policy, warmup=warmup,
                         progress=progress)


@dataclass(frozen=True)
class SeedStatistics:
    """Mean/spread of one metric across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def within(self, low: float, high: float) -> bool:
        return low <= self.mean <= high


def over_seeds(
    seeds: Sequence[int],
    run: Callable[[int], SimStats],
    extract: Callable[[SimStats], float],
) -> SeedStatistics:
    """Run once per seed and summarize the extracted metric."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = np.asarray([float(extract(run(seed))) for seed in seeds])
    return SeedStatistics(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if len(values) > 1 else 0.0,
        minimum=float(values.min()),
        maximum=float(values.max()),
        n=len(values),
    )
