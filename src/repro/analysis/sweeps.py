"""Parameter-sweep utilities (numpy-backed).

The figure-style benches all share a shape: vary one parameter, run a
deterministic simulation per point (optionally over several seeds), and
extract metrics.  These helpers centralize that, with seed statistics for
the stochastic workload generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.sim.stats import SimStats


@dataclass
class SweepSeries:
    """One metric's values along a sweep."""

    name: str
    xs: np.ndarray
    values: np.ndarray

    def ratio_to(self, other: "SweepSeries") -> np.ndarray:
        if not np.array_equal(self.xs, other.xs):
            raise ValueError("series sampled at different points")
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(other.values != 0,
                            self.values / other.values, np.inf)

    @property
    def monotone_increasing(self) -> bool:
        return bool(np.all(np.diff(self.values) >= 0))

    @property
    def monotone_decreasing(self) -> bool:
        return bool(np.all(np.diff(self.values) <= 0))


@dataclass
class Sweep:
    """Run a simulation per x value and collect named metrics."""

    xs: Sequence
    run: Callable[[object], SimStats]
    metrics: dict[str, Callable[[SimStats], float]] = field(default_factory=dict)

    def execute(self) -> dict[str, SweepSeries]:
        if not self.metrics:
            raise ValueError("no metrics to collect")
        collected: dict[str, list[float]] = {name: [] for name in self.metrics}
        for x in self.xs:
            stats = self.run(x)
            for name, extract in self.metrics.items():
                collected[name].append(float(extract(stats)))
        xs = np.asarray(list(self.xs), dtype=float)
        return {
            name: SweepSeries(name=name, xs=xs,
                              values=np.asarray(vals, dtype=float))
            for name, vals in collected.items()
        }


@dataclass(frozen=True)
class SeedStatistics:
    """Mean/spread of one metric across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def within(self, low: float, high: float) -> bool:
        return low <= self.mean <= high


def over_seeds(
    seeds: Sequence[int],
    run: Callable[[int], SimStats],
    extract: Callable[[SimStats], float],
) -> SeedStatistics:
    """Run once per seed and summarize the extracted metric."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = np.asarray([float(extract(run(seed))) for seed in seeds])
    return SeedStatistics(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if len(values) > 1 else 0.0,
        minimum=float(values.min()),
        maximum=float(values.max()),
        n=len(values),
    )
