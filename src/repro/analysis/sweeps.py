"""Parameter-sweep utilities (numpy-backed).

The figure-style benches all share a shape: vary one parameter, run a
deterministic simulation per point (optionally over several seeds), and
extract metrics.  These helpers centralize that, with seed statistics for
the stochastic workload generators.

Sweep points are independent simulations, so they parallelize trivially:
``Sweep.execute(jobs=N)`` (or :func:`run_sweep_parallel`) fans the points
out over a :class:`~concurrent.futures.ProcessPoolExecutor`.  The ``run``
callable must then be picklable -- a module-level function, not a lambda
or closure; metric extraction always happens in the parent process, so
the ``metrics`` callables are unconstrained.

Per-point observability: a ``run`` callable may return an
:class:`ObservedPoint` instead of bare stats, carrying the point's
:class:`~repro.obs.core.ObsResult` (sample series, metric snapshot,
timeline).  ``ObsResult`` is plain data, so it survives pickling back
from the worker processes; after ``execute()`` the per-point results are
on :attr:`Sweep.observations` in sweep order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.obs.core import ObsResult
from repro.sim.stats import SimStats


@dataclass(frozen=True)
class ObservedPoint:
    """One sweep point's stats plus its observability payload."""

    stats: SimStats
    obs: ObsResult | None = None


@dataclass
class SweepSeries:
    """One metric's values along a sweep."""

    name: str
    xs: np.ndarray
    values: np.ndarray

    def ratio_to(self, other: "SweepSeries") -> np.ndarray:
        if not np.array_equal(self.xs, other.xs):
            raise ValueError("series sampled at different points")
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(other.values != 0,
                            self.values / other.values, np.inf)

    @property
    def monotone_increasing(self) -> bool:
        return bool(np.all(np.diff(self.values) >= 0))

    @property
    def monotone_decreasing(self) -> bool:
        return bool(np.all(np.diff(self.values) <= 0))


@dataclass
class Sweep:
    """Run a simulation per x value and collect named metrics."""

    xs: Sequence
    run: Callable[[object], "SimStats | ObservedPoint"]
    metrics: dict[str, Callable[[SimStats], float]] = field(default_factory=dict)
    #: Per-point ObsResults (sweep order) after execute(); None for points
    #: whose run callable returned bare stats.
    observations: list = field(default_factory=list, init=False, repr=False)
    #: Per-point SimStats (sweep order) after execute().
    results: list = field(default_factory=list, init=False, repr=False)

    def execute(self, jobs: int = 1) -> dict[str, SweepSeries]:
        if not self.metrics:
            raise ValueError("no metrics to collect")
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(self.run, self.xs))
        else:
            results = [self.run(x) for x in self.xs]
        return self._collect(results)

    def _collect(
        self, results: "Sequence[SimStats | ObservedPoint]"
    ) -> dict[str, SweepSeries]:
        """Extract every metric from the per-point stats, in sweep order."""
        stats_list = [
            r.stats if isinstance(r, ObservedPoint) else r for r in results
        ]
        self.results = stats_list
        self.observations = [
            r.obs if isinstance(r, ObservedPoint) else None for r in results
        ]
        xs = np.asarray(list(self.xs), dtype=float)
        return {
            name: SweepSeries(
                name=name, xs=xs,
                values=np.asarray([float(extract(stats))
                                   for stats in stats_list],
                                  dtype=float),
            )
            for name, extract in self.metrics.items()
        }


def run_sweep_parallel(sweep: Sweep, jobs: int) -> dict[str, SweepSeries]:
    """Execute ``sweep`` with its points distributed over ``jobs`` worker
    processes (serial when ``jobs <= 1``).

    Results are identical to :meth:`Sweep.execute`: each point is a
    deterministic, independent simulation, and the series preserve sweep
    order regardless of completion order.
    """
    return sweep.execute(jobs=jobs)


@dataclass(frozen=True)
class SeedStatistics:
    """Mean/spread of one metric across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def within(self, low: float, high: float) -> bool:
        return low <= self.mean <= high


def over_seeds(
    seeds: Sequence[int],
    run: Callable[[int], SimStats],
    extract: Callable[[SimStats], float],
) -> SeedStatistics:
    """Run once per seed and summarize the extracted metric."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = np.asarray([float(extract(run(seed))) for seed in seeds])
    return SeedStatistics(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if len(values) > 1 else 0.0,
        minimum=float(values.min()),
        maximum=float(values.max()),
        n=len(values),
    )
