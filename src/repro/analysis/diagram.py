"""State-diagram emitters for table-driven protocols.

Because every protocol is a declarative
:class:`~repro.protocols.table.TransitionTable`, its state diagram --
the figure the paper draws for each scheme -- can be *generated* rather
than drawn.  ``to_dot`` emits Graphviz and ``to_mermaid`` emits a
Mermaid ``stateDiagram-v2`` block (the form embedded in
``docs/protocols.md``).

Edge labels read ``event [guard] / actions``; transient machinery
states are drawn dashed; processor documentation rows whose transition
is carried by machinery (``pr-rmw`` under memory-hold, for instance)
are included, since they are part of the table's story.
"""

from __future__ import annotations

from repro.protocols.table import Rule, TransitionTable

#: Events whose rows do not move the block between states and would only
#: clutter a diagram with self-loops (pure hits and no-op snoops are
#: still listed when they carry actions).
_SELF_LOOP_ACTIONS_ONLY = frozenset({"hit"})


def _edge_label(r: Rule) -> str:
    label = r.event.value
    if r.guard:
        label += " [" + ",".join(sorted(r.guard)) + "]"
    if r.actions:
        label += " / " + ",".join(r.actions)
    return label


def _edges(table: TransitionTable) -> list[tuple[str, str, str]]:
    """(src, dst, label) per rule, dropping label-free self-loops."""
    edges = []
    for r in table.rules:
        if r.state is r.next_state and (
                not r.actions or set(r.actions) <= _SELF_LOOP_ACTIONS_ONLY):
            continue
        edges.append((r.state.value, r.next_state.value, _edge_label(r)))
    return edges


def to_dot(table: TransitionTable) -> str:
    """Graphviz digraph for one protocol table."""
    lines = [
        f'digraph "{table.name}" {{',
        "  rankdir=LR;",
        '  node [shape=circle, fontname="Helvetica"];',
        '  edge [fontsize=10, fontname="Helvetica"];',
        '  __start [shape=point, label=""];',
        "  __start -> I;",
    ]
    for state in sorted(table.states_mentioned(), key=lambda s: s.value):
        style = ', style=dashed' if state in table.transient_states else ""
        lines.append(f'  {state.value} [label="{state.value}"{style}];')
    for src, dst, label in _edges(table):
        escaped = label.replace('"', '\\"')
        lines.append(f'  {src} -> {dst} [label="{escaped}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_mermaid(table: TransitionTable) -> str:
    """Mermaid ``stateDiagram-v2`` block for one protocol table."""
    lines = ["stateDiagram-v2", "    [*] --> I"]
    for state in sorted(table.states_mentioned(), key=lambda s: s.value):
        if state in table.transient_states:
            lines.append(f"    {state.value}: {state.value} (transient)")
    for src, dst, label in _edges(table):
        # Mermaid treats the first colon as the label delimiter but
        # chokes on further ones inside the label text.
        safe = label.replace(":", "·")
        lines.append(f"    {src} --> {dst}: {safe}")
    return "\n".join(lines) + "\n"


def render_diagram(table: TransitionTable, fmt: str = "dot") -> str:
    """Dispatch on ``fmt`` (``dot`` or ``mermaid``)."""
    if fmt == "dot":
        return to_dot(table)
    if fmt == "mermaid":
        return to_mermaid(table)
    raise ValueError(f"unknown diagram format {fmt!r} "
                     "(expected 'dot' or 'mermaid')")
