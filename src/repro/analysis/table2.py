"""Table 2: Innovation summary.

Each scheme's innovations, generated from the protocol feature descriptors
where they are feature-shaped and annotated with the paper's wording where
they are not.  Tests assert every implemented protocol appears and that
the feature-derived claims agree with the implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols import get_protocol
from repro.protocols.features import (
    FlushPolicy,
    ReadSourcePolicy,
    SharingDetermination,
)


@dataclass(frozen=True)
class InnovationEntry:
    scheme: str
    citation: str
    protocol: str | None  # registry name; None for the pre-1978 classic group
    innovations: tuple[str, ...]


def derived_innovations(protocol_name: str) -> list[str]:
    """Innovations derivable from the protocol's feature descriptor."""
    f = get_protocol(protocol_name).features()
    out: list[str] = []
    if f.cache_to_cache_transfer:
        out.append("cache-to-cache transfer (source status)")
    if f.bus_invalidate_signal:
        out.append("bus invalidate signal")
    if f.fetch_for_write_on_read_miss is SharingDetermination.DYNAMIC:
        out.append("fetch unshared data for write privilege (dynamic, hit line)")
    elif f.fetch_for_write_on_read_miss is SharingDetermination.STATIC:
        out.append("fetch unshared data for write privilege (static, declared)")
    if f.atomic_rmw:
        out.append("serialized atomic read-modify-write")
    if f.flush_policy is FlushPolicy.FLUSH:
        out.append("flushing on cache-to-cache transfer")
    elif f.flush_policy in (FlushPolicy.NO_FLUSH, FlushPolicy.NO_FLUSH_WITH_STATUS):
        out.append("no flushing on cache-to-cache transfer")
    if f.read_source_policy is ReadSourcePolicy.ARBITRATE:
        out.append("multiple sources for read-shared block (arbitrated)")
    elif f.read_source_policy is ReadSourcePolicy.MEMORY:
        out.append("single source; memory serves after source purge")
    elif f.read_source_policy is ReadSourcePolicy.LRU:
        out.append("last fetcher becomes source (LRU across caches)")
    if f.write_without_fetch:
        out.append("writing without fetch on write miss")
    if f.efficient_busy_wait:
        out.append("efficient busy wait (lock state, lock-waiter, busy-wait register)")
    return out


TABLE2: tuple[InnovationEntry, ...] = (
    InnovationEntry(
        scheme="Classic (pre-1978) write-through",
        citation="described by Censier & Feautrier 1978",
        protocol="write-through",
        innovations=(
            "identical dual directories",
            "broadcast an invalidation request on every write",
        ),
    ),
    InnovationEntry(
        scheme="Goodman (write-once)",
        citation="Goodman 1983",
        protocol="goodman",
        innovations=(
            "identical dual directories",
            "fully-distributed read/write/dirty/source status",
            "cache-to-cache transfer (source status) for dirty blocks",
            "flushing on cache-to-cache transfer",
            "serializing conflicting single reads and writes",
        ),
    ),
    InnovationEntry(
        scheme="Frank (Synapse)",
        citation="Frank 1984",
        protocol="synapse",
        innovations=(
            "bus invalidate signal",
            "no flushing on cache-to-cache transfer",
        ),
    ),
    InnovationEntry(
        scheme="Papamarcos & Patel (Illinois)",
        citation="Papamarcos, Patel 1984",
        protocol="illinois",
        innovations=(
            "cache-to-cache transfer (source status) for clean blocks",
            "fetching unshared data for write privilege on read miss "
            "(dynamic determination using the bus hit line)",
            "multiple sources for read-shared block (read source arbitrates)",
            "serializing atomic read-modify-writes",
        ),
    ),
    InnovationEntry(
        scheme="Yen, Yen & Fu",
        citation="Yen et al. 1985",
        protocol="yen",
        innovations=(
            "fetching unshared data for write privilege "
            "(static determination using program declaration)",
        ),
    ),
    InnovationEntry(
        scheme="Katz, Eggers, Wood, Perkins & Sheldon (Berkeley)",
        citation="Katz et al. 1985",
        protocol="berkeley",
        innovations=(
            "cache-to-cache transfer for read request without flushing "
            "(dirty read state)",
            "dual-ported-read directory and data store",
            "single source for read-shared (dirty) block; fetch from memory "
            "if source purges the block",
        ),
    ),
    InnovationEntry(
        scheme="Our proposal (Bitar & Despain)",
        citation="Bitar, Despain 1986",
        protocol="bitar-despain",
        innovations=(
            "efficient busy-wait locking (lock state)",
            "efficient busy-waiting (lock-waiter state, busy-wait register)",
            "analysis of interdirectory interference",
            "single source for read-shared block; last fetcher becomes "
            "source, allowing LRU replacement across caches",
            "writing without fetch on write miss, to save process state",
        ),
    ),
    InnovationEntry(
        scheme="Dragon / Firefly",
        citation="McCreight 1984; Archibald & Baer 1985",
        protocol="dragon",
        innovations=(
            "write-in for unshared data, write-through for shared data",
            "dynamic determination of shared status using the bus hit line",
        ),
    ),
    InnovationEntry(
        scheme="Rudolph & Segall",
        citation="Rudolph, Segall 1984",
        protocol="rudolph-segall",
        innovations=(
            "dynamic determination of shared status using the interleaving "
            "of accesses among the processors",
            "efficient busy wait (write-throughs update invalid copies)",
        ),
    ),
)


def render_table2() -> str:
    lines = ["Table 2. Innovation Summary", "=" * 27]
    for entry in TABLE2:
        lines.append(f"\n{entry.scheme} ({entry.citation})")
        for item in entry.innovations:
            lines.append(f"  - {item}")
    return "\n".join(lines)
