"""Analysis layer: table builders, Figure-10 enumeration, formulas."""

from repro.analysis.formulas import (
    TrafficIncrease,
    fetch_for_write_saving,
    fragmentation_transfer_cost,
    invalidation_signal_saving,
    smith_frequency_range,
    write_hit_to_clean_frequency,
)
from repro.analysis.metrics import (
    LockMetrics,
    TrafficMetrics,
    lock_metrics,
    processor_utilization,
    speedup,
    traffic_metrics,
)
from repro.analysis.diagram import render_diagram, to_dot, to_mermaid
from repro.analysis.encoding import state_bits, transfer_unit_encoding
from repro.analysis.queueing import (
    BusQueueingPoint,
    bus_queueing_point,
    md1_mean_wait,
)
from repro.analysis.report import format_ratio, render_series, render_table
from repro.analysis.resilient import (
    POINT_STATUSES,
    ExecutionPolicy,
    PointOutcome,
)
from repro.analysis.sweeps import (
    SeedStatistics,
    Sweep,
    SweepSeries,
    over_seeds,
    run_sweep_parallel,
)
from repro.analysis.table1 import Table1, build_table1
from repro.analysis.table2 import TABLE2, derived_innovations, render_table2
from repro.analysis.transitions import (
    enumerate_bus_arcs,
    enumerate_processor_arcs,
    render_figure10,
    verify_figure10,
)

__all__ = [
    "BusQueueingPoint",
    "ExecutionPolicy",
    "LockMetrics",
    "POINT_STATUSES",
    "PointOutcome",
    "SeedStatistics",
    "Sweep",
    "run_sweep_parallel",
    "SweepSeries",
    "TABLE2",
    "Table1",
    "TrafficIncrease",
    "TrafficMetrics",
    "build_table1",
    "bus_queueing_point",
    "derived_innovations",
    "enumerate_bus_arcs",
    "enumerate_processor_arcs",
    "fetch_for_write_saving",
    "format_ratio",
    "fragmentation_transfer_cost",
    "invalidation_signal_saving",
    "lock_metrics",
    "md1_mean_wait",
    "processor_utilization",
    "render_diagram",
    "render_figure10",
    "render_series",
    "over_seeds",
    "render_table",
    "render_table2",
    "smith_frequency_range",
    "speedup",
    "state_bits",
    "to_dot",
    "to_mermaid",
    "transfer_unit_encoding",
    "traffic_metrics",
    "verify_figure10",
    "write_hit_to_clean_frequency",
]
