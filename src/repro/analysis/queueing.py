"""Analytic bus-queueing model.

Bitar (1985) is an analytical treatment; in that spirit this module
provides a simple M/D/1 approximation of the single bus -- deterministic
service (block transfers have fixed duration), Poisson-ish arrivals from
many independent processors -- to cross-check the simulator's measured
arbitration delays (``SimStats.mean_bus_wait``):

    W = rho * S / (2 * (1 - rho))        (mean wait in queue, M/D/1)

with utilization ``rho = lambda * S``.  The approximation is crude for a
closed system of few processors (arrivals stall while waiting), so the
bench asserts only the shape: waits grow slowly at low utilization and
blow up as the bus saturates, with the model tracking the simulation
within a small factor in the mid-range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import SimStats


@dataclass(frozen=True)
class BusQueueingPoint:
    utilization: float
    mean_service: float
    predicted_wait: float
    measured_wait: float


def md1_mean_wait(utilization: float, mean_service: float) -> float:
    """Mean queueing delay of an M/D/1 server."""
    if not 0 <= utilization < 1:
        raise ValueError("utilization must be in [0, 1)")
    if mean_service <= 0:
        raise ValueError("mean_service must be positive")
    return utilization * mean_service / (2.0 * (1.0 - utilization))


def bus_queueing_point(stats: SimStats) -> BusQueueingPoint:
    """Build a model-vs-measurement point from one run's statistics."""
    grants = stats.total_transactions
    if grants == 0:
        raise ValueError("no bus transactions in the run")
    mean_service = stats.bus_busy_cycles / grants
    rho = min(stats.bus_utilization, 0.999)
    return BusQueueingPoint(
        utilization=stats.bus_utilization,
        mean_service=mean_service,
        predicted_wait=md1_mean_wait(rho, mean_service),
        measured_wait=stats.mean_bus_wait,
    )
