"""Single-schedule execution for the model checker.

One call = one complete simulated run of a scenario under one schedule,
with the full verification battery armed: invariants checked every
cycle, the strict write oracle, the deadlock watchdog, and the
scenario's final-state expectation.  Any violation is converted into a
:class:`Failure` value rather than propagating, so the explorer and
fuzzer can treat runs uniformly.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.common.errors import (
    CoherenceViolation,
    DeadlockError,
    ProgramError,
    ProtocolError,
    SerializationViolation,
)
from repro.mc.scenarios import ExpectationError, Scenario
from repro.sim.engine import Simulator
from repro.sim.schedule import (
    Choice,
    RecordingScheduler,
    ReplayScheduler,
    Scheduler,
)

#: Violations the checker reports as counterexamples (anything else is a
#: genuine crash and propagates).
FAILURE_EXCEPTIONS = (
    CoherenceViolation,
    SerializationViolation,
    DeadlockError,
    ProtocolError,
    ProgramError,
    ExpectationError,
)

#: Hard per-run cycle bound -- generous for scenarios that finish in a
#: few hundred cycles, but it converts any livelock the progress
#: watchdog cannot see (e.g. a spinning reader that keeps hitting) into
#: a reported failure.
DEFAULT_MAX_CYCLES = 20_000


class PruneRun(Exception):
    """Raised by an observer to cut a run short (state already seen)."""


@dataclass(frozen=True)
class Failure:
    """One detected violation, in a JSON-friendly shape."""

    kind: str
    message: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message}

    @staticmethod
    def from_dict(data: dict) -> "Failure":
        return Failure(kind=data["kind"], message=data["message"])


@dataclass
class ScheduleOutcome:
    """Everything one scheduled run produced."""

    failure: Failure | None
    #: Full decision record (candidates + index per choice point).
    choices: list[Choice]
    cycles: int
    pruned: bool = False
    #: The finished simulator (for expectations/diagnostics); only kept
    #: when the caller asked for it.
    sim: Simulator | None = None

    @property
    def schedule(self) -> list[int]:
        return [choice.chosen for choice in self.choices]


def build_sim(scenario: Scenario, protocol: str, scheduler: Scheduler,
              **sim_kwargs) -> Simulator:
    """Fresh fully-instrumented simulator for one scheduled run."""
    config, programs = scenario.build(protocol)
    return Simulator(config, programs, check_interval=1,
                     scheduler=scheduler, **sim_kwargs)


def run_schedule(
    scenario: Scenario,
    protocol: str,
    prefix=(),
    *,
    scheduler: Scheduler | None = None,
    mutation=None,
    observer=None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    keep_sim: bool = False,
    obs=None,
    max_wall_seconds: float | None = None,
) -> ScheduleOutcome:
    """Run ``scenario`` under one schedule and classify the outcome.

    ``prefix`` is a choice-index sequence replayed from the start; past
    its end every choice defaults to index 0 (the engine's legacy
    tie-break).  Alternatively pass ``scheduler`` (e.g. a
    :class:`~repro.sim.schedule.RandomScheduler`) to drive the choices.
    Either way the actual decisions are recorded and returned.

    ``observer(sim, recorder)`` runs after every cycle and may raise
    :class:`PruneRun` to abandon the run (the explorer's state-dedup).
    ``mutation`` is a :class:`~repro.mc.mutations.Mutation` applied for
    the duration of the run.

    ``max_wall_seconds`` arms the engine watchdog for this run; a
    wedged simulation raises
    :class:`~repro.common.errors.WatchdogTimeout` (which propagates --
    exceeding a *checker* budget is not a protocol failure), letting
    the fuzzer enforce its time budget mid-run instead of only between
    runs.
    """
    recorder = RecordingScheduler(
        scheduler if scheduler is not None else ReplayScheduler(prefix)
    )
    patch = mutation.apply() if mutation is not None else nullcontext()
    with patch:
        sim = build_sim(scenario, protocol, recorder,
                        **({"obs": obs} if obs is not None else {}))
        sim.arm_watchdog(max_wall_seconds)
        watchdog_countdown = 0
        horizon = sim.config.deadlock_horizon
        failure: Failure | None = None
        pruned = False
        try:
            while not sim.done:
                if sim.stats.cycles >= max_cycles:
                    raise DeadlockError(
                        f"scenario {scenario.name!r} did not complete "
                        f"within {max_cycles} cycles"
                    )
                if max_wall_seconds is not None:
                    if watchdog_countdown == 0:
                        watchdog_countdown = 256
                        sim.check_watchdog()
                    watchdog_countdown -= 1
                sim.step()
                sim._watch_progress(horizon)
                if observer is not None:
                    observer(sim, recorder)
            sim._finish()
            if scenario.expect is not None:
                scenario.expect(sim)
        except PruneRun:
            pruned = True
        except FAILURE_EXCEPTIONS as exc:
            failure = Failure(kind=type(exc).__name__, message=str(exc))
    return ScheduleOutcome(
        failure=failure,
        choices=list(recorder.choices),
        cycles=sim.stats.cycles,
        pruned=pruned,
        sim=sim if keep_sim else None,
    )
