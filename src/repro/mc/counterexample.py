"""Replayable counterexample traces.

A counterexample pins down one failing run completely: the scenario and
protocol that were driven, the mutation (if any) that was active, the
choice-index schedule, and the failure observed.  Replaying the schedule
through :class:`~repro.sim.schedule.ReplayScheduler` reproduces the run
bit-for-bit, so a saved trace is a self-contained bug report.

Traces serialize to versioned JSON (``schema_version``), and can be
re-exported as a Chrome/Perfetto trace via the existing observability
exporter -- load the JSON, call :meth:`Counterexample.to_chrome_trace`,
and open the result in ``ui.perfetto.dev``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.schema import check as check_schema
from repro.common.schema import stamp
from repro.mc.runner import Failure, ScheduleOutcome, run_schedule
from repro.mc.scenarios import Scenario, get_scenario
from repro.sim.schedule import Choice


@dataclass
class Counterexample:
    """One minimal failing schedule, ready to save/load/replay."""

    protocol: str
    scenario: str
    schedule: list[int]
    failure: Failure
    mutation: str | None = None
    cycles: int = 0
    #: Decision record of the confirming run (for humans reading the
    #: trace: which arbitration/issue/source choices the indices mean).
    choices: list[Choice] = field(default_factory=list)
    #: Fuzzer seed that first found it, if any.
    seed: int | None = None

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return stamp({
            "kind": "counterexample",
            "protocol": self.protocol,
            "scenario": self.scenario,
            "mutation": self.mutation,
            "schedule": list(self.schedule),
            "failure": self.failure.to_dict(),
            "cycles": self.cycles,
            "seed": self.seed,
            "choices": [choice.to_dict() for choice in self.choices],
        })

    @staticmethod
    def from_dict(data: dict) -> "Counterexample":
        check_schema(data, where="counterexample")
        return Counterexample(
            protocol=data["protocol"],
            scenario=data["scenario"],
            mutation=data.get("mutation"),
            schedule=[int(i) for i in data["schedule"]],
            failure=Failure.from_dict(data["failure"]),
            cycles=int(data.get("cycles", 0)),
            seed=data.get("seed"),
            choices=[Choice.from_dict(c) for c in data.get("choices", [])],
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @staticmethod
    def load(path: str | Path) -> "Counterexample":
        return Counterexample.from_dict(json.loads(Path(path).read_text()))

    # -- replay ------------------------------------------------------------

    def _scenario(self) -> Scenario:
        return get_scenario(self.scenario)

    def _mutation(self):
        if self.mutation is None:
            return None
        from repro.mc.mutations import get_mutation

        return get_mutation(self.mutation)

    def replay(self, *, keep_sim: bool = False, obs=None) -> ScheduleOutcome:
        """Re-run the recorded schedule; returns the outcome (which
        should reproduce :attr:`failure`)."""
        return run_schedule(
            self._scenario(), self.protocol, self.schedule,
            mutation=self._mutation(), keep_sim=keep_sim, obs=obs,
        )

    def reproduces(self) -> bool:
        """Whether replaying still produces the recorded failure kind."""
        outcome = self.replay()
        return (outcome.failure is not None
                and outcome.failure.kind == self.failure.kind)

    def to_chrome_trace(self) -> dict:
        """Replay under the observability sampler and export the run as
        a Chrome/Perfetto trace payload."""
        from repro.obs.core import Observability
        from repro.obs.export import chrome_trace

        obs = Observability(interval=1)
        outcome = self.replay(obs=obs)
        payload = chrome_trace(obs.result())
        payload.setdefault("otherData", {})["counterexample"] = {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "mutation": self.mutation,
            "failure": self.failure.to_dict(),
            "reproduced": outcome.failure is not None,
        }
        return payload


def from_outcome(
    scenario: Scenario,
    protocol: str,
    schedule: list[int],
    outcome: ScheduleOutcome,
    *,
    mutation: str | None = None,
    seed: int | None = None,
) -> Counterexample:
    """Package a failing run as a :class:`Counterexample`."""
    assert outcome.failure is not None
    return Counterexample(
        protocol=protocol,
        scenario=scenario.name,
        schedule=list(schedule),
        failure=outcome.failure,
        mutation=mutation,
        cycles=outcome.cycles,
        choices=list(outcome.choices),
        seed=seed,
    )
