"""Delta-debugging shrinker for failing schedules.

A schedule is a list of choice indices; index 0 is always the engine's
legacy tie-break, and a replay past the end of the list defaults to 0.
That gives two natural reduction moves that always yield *valid*
schedules:

* **truncate** -- drop a suffix (the tail reverts to default choices);
* **zero** -- set a chunk of entries to 0 (those decisions revert to the
  default without renumbering later positions, which matters because a
  schedule is positional).

The shrinker alternates ddmin-style passes of both moves until neither
makes progress, re-running the scenario each time and keeping any
variant that still fails (any failure counts -- a smaller schedule that
trips a *different* check is still a minimal counterexample of the
mutation or bug under study).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mc.runner import ScheduleOutcome, run_schedule
from repro.mc.scenarios import Scenario


@dataclass
class ShrinkResult:
    schedule: list[int]
    outcome: ScheduleOutcome
    #: Re-runs spent shrinking.
    runs: int


def _strip_trailing_zeros(schedule: list[int]) -> list[int]:
    end = len(schedule)
    while end > 0 and schedule[end - 1] == 0:
        end -= 1
    return schedule[:end]


def shrink(
    scenario: Scenario,
    protocol: str,
    schedule: list[int],
    *,
    mutation=None,
    max_runs: int = 400,
    max_cycles: int | None = None,
) -> ShrinkResult:
    """Minimize a failing ``schedule``; returns the smallest variant
    found and the outcome of its final confirming run."""
    run_kwargs: dict = {"mutation": mutation}
    if max_cycles is not None:
        run_kwargs["max_cycles"] = max_cycles
    runs = 0

    def fails(candidate: list[int]) -> ScheduleOutcome | None:
        nonlocal runs
        runs += 1
        outcome = run_schedule(scenario, protocol, candidate, **run_kwargs)
        return outcome if outcome.failure is not None else None

    current = _strip_trailing_zeros(list(schedule))
    best = fails(current)
    if best is None:
        # The caller's schedule does not fail (e.g. trailing non-default
        # entries were load-bearing); fall back to the original.
        current = list(schedule)
        best = fails(current)
        if best is None:
            raise ValueError("shrink() requires a failing schedule")

    progress = True
    while progress and runs < max_runs:
        progress = False
        # Pass 1: truncate suffixes, largest first.
        chunk = max(1, len(current) // 2)
        while chunk >= 1 and runs < max_runs:
            if len(current) > 0:
                candidate = _strip_trailing_zeros(current[:-chunk])
                if len(candidate) < len(current):
                    outcome = fails(candidate)
                    if outcome is not None:
                        current, best = candidate, outcome
                        progress = True
                        chunk = max(1, len(current) // 2)
                        continue
            chunk //= 2
        # Pass 2: zero out chunks (positions are significant, so entries
        # are defaulted in place rather than deleted).
        chunk = max(1, len(current) // 2)
        while chunk >= 1 and runs < max_runs:
            changed = False
            start = 0
            while start < len(current) and runs < max_runs:
                if any(current[start:start + chunk]):
                    candidate = list(current)
                    candidate[start:start + chunk] = [0] * len(
                        candidate[start:start + chunk])
                    candidate = _strip_trailing_zeros(candidate)
                    outcome = fails(candidate)
                    if outcome is not None:
                        current, best = candidate, outcome
                        progress = True
                        changed = True
                        start = 0
                        continue
                start += chunk
            if not changed:
                chunk //= 2
    return ShrinkResult(schedule=current, outcome=best, runs=runs)
