"""Exhaustive schedule-space exploration.

The engine's nondeterminism is fully captured by the sequence of
choice-point indices a run takes (see :mod:`repro.sim.schedule`), so
the schedule space is a tree: each decision point with *f* candidates
fans out into *f* subtrees.  The explorer walks that tree depth-first
using *stateless replay*: a node is identified by its choice-index
prefix, and visiting it means re-running the simulator with that prefix
replayed and every later choice defaulted to index 0.

Each run reports every decision point it passed; for each point at or
beyond the node's prefix the explorer queues the sibling prefixes
(``prefix + [1..f-1]``), which visits every tree node exactly once.

Revisited *states* are pruned: after any cycle in which a decision was
taken, the run's canonical fingerprint (:mod:`repro.mc.hashing`) is
looked up in a visited set -- two different schedules that converge to
the same behavioral state share all future behaviour, so the second
branch is cut.  This is what makes exhaustive enumeration tractable for
the 2-3 processor scenarios while remaining sound for safety
properties: every reachable state is still reached by some explored
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mc.hashing import fingerprint
from repro.mc.runner import Failure, PruneRun, run_schedule
from repro.mc.scenarios import Scenario
from repro.sim.schedule import SchedulerStats


@dataclass
class ExploreResult:
    """Outcome of exploring one (scenario, protocol) pair."""

    scenario: str
    protocol: str
    mutation: str | None = None
    #: Schedules actually run (including pruned partial runs).
    schedules: int = 0
    #: Runs cut short because they revisited a known state.
    pruned: int = 0
    #: Distinct canonical states seen.
    states: int = 0
    #: True when the whole tree (modulo state dedup) was covered within
    #: the budget.
    complete: bool = False
    failure: Failure | None = None
    #: The choice-index schedule that produced ``failure``.
    failing_schedule: list[int] | None = None
    #: Decision-point profile of the first (default) schedule.
    decision_stats: SchedulerStats = field(default_factory=SchedulerStats)

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "mutation": self.mutation,
            "schedules": self.schedules,
            "pruned": self.pruned,
            "states": self.states,
            "complete": self.complete,
            "failure": self.failure.to_dict() if self.failure else None,
            "failing_schedule": self.failing_schedule,
            "decision_points": self.decision_stats.decision_points,
            "decisions_by_kind": dict(self.decision_stats.by_kind),
        }


def explore(
    scenario: Scenario,
    protocol: str,
    *,
    mutation=None,
    max_schedules: int = 20_000,
    max_cycles: int | None = None,
    dedupe: bool = True,
) -> ExploreResult:
    """Exhaustively explore ``scenario`` under ``protocol``.

    Stops at the first failure (the shrinker minimizes it afterwards) or
    when the tree is exhausted; ``max_schedules`` bounds the walk, and a
    result with ``complete=False`` means the budget ran out first.
    """
    result = ExploreResult(
        scenario=scenario.name,
        protocol=protocol,
        mutation=mutation.name if mutation is not None else None,
    )
    visited: set[int] = set()
    run_kwargs: dict = {"mutation": mutation}
    if max_cycles is not None:
        run_kwargs["max_cycles"] = max_cycles

    def make_observer(prefix_len: int):
        seen_choices = 0

        def observer(sim, recorder) -> None:
            nonlocal seen_choices
            if not dedupe:
                return
            taken = len(recorder.choices)
            if taken > seen_choices:
                seen_choices = taken
                # States along the replayed prefix were fingerprinted by
                # the ancestor run that first took them; checking them
                # here would prune every non-root replay at its first
                # decision.  Dedup starts at the divergent choice (the
                # prefix's last entry) -- everything from there on is
                # this branch's own territory.
                if taken < prefix_len:
                    return
                fp = fingerprint(sim)
                if fp in visited:
                    raise PruneRun()
                visited.add(fp)

        return observer

    stack: list[list[int]] = [[]]
    while stack:
        if result.schedules >= max_schedules:
            return result  # budget exhausted; complete stays False
        prefix = stack.pop()
        outcome = run_schedule(scenario, protocol, prefix,
                               observer=make_observer(len(prefix)),
                               **run_kwargs)
        result.schedules += 1
        result.states = len(visited)
        if result.schedules == 1:
            result.decision_stats = SchedulerStats.of(outcome.choices)
        if outcome.pruned:
            result.pruned += 1
        if outcome.failure is not None:
            result.failure = outcome.failure
            result.failing_schedule = outcome.schedule
            return result
        # Queue the siblings of every decision at or beyond this node's
        # prefix.  A pruned run stops recording at the cut, which is
        # exactly right: the subtree past a revisited state belongs to
        # the branch that saw the state first.
        for i in range(len(prefix), len(outcome.choices)):
            choice = outcome.choices[i]
            base = [c.chosen for c in outcome.choices[:i]]
            for alternative in range(1, len(choice.candidates)):
                stack.append(base + [alternative])
    result.complete = True
    return result
