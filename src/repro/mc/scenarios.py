"""Small, replayable scenarios for the model checker.

Each scenario is a *family* of tiny concurrent programs parameterized by
protocol: a couple of processors touching one or two blocks, small
enough that the schedule space is exhaustively enumerable, yet shaped to
exercise the behaviours the paper's correctness argument rests on --
lock handoff (Section E.3/E.4), atomic read-modify-write serialization
(Feature 6), racing unsynchronized writes, read-source arbitration
(Feature 8), and dirty-victim write-back.

Builders return a *fresh* config and program list on every call:
:class:`~repro.processor.isa.Op` instances are mutated during a run
(stamps, results), so programs must never be shared between runs.

Lock ops are lowered per protocol exactly as the benchmarks do: the
proposal keeps its cache-state lock instructions, everything else spins
with test-and-test-and-set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.config import CacheConfig, SystemConfig, TopologyConfig
from repro.common.errors import ReproError
from repro.processor.isa import lock, read, rmw, test_and_set, unlock, write
from repro.processor.program import LockStyle, Program

#: Word addresses used by every scenario.  With four-word blocks LOCK and
#: DATA share one block (the paper's hard atom: lock word + data words);
#: with one-word blocks (Rudolph-Segall) they land in adjacent blocks --
#: so the scenarios span the required 1-2 block configurations.
LOCK_WORD = 0
DATA_WORD = 1


class ExpectationError(ReproError):
    """A scenario's final-state expectation did not hold."""


@dataclass(frozen=True)
class Scenario:
    """One named, protocol-parameterized model-checking scenario."""

    name: str
    description: str
    #: Builds ``(config, programs)`` fresh for each run.
    build: Callable[[str], tuple[SystemConfig, list[Program]]]
    #: Final-state check over the finished simulator; raises
    #: :class:`ExpectationError` on violation.  ``None`` means the
    #: per-cycle invariants and the oracle are the whole property.
    expect: Callable[[object], None] | None = None
    #: Whether the scenario is small enough for exhaustive enumeration
    #: (otherwise the checker only fuzzes it).
    exhaustive: bool = True


def lock_style_for(protocol: str) -> LockStyle:
    """How LOCK/UNLOCK are realized on ``protocol`` (mirrors the
    benchmark harness: the proposal uses its lock state, others spin)."""
    return (LockStyle.CACHE_LOCK if protocol == "bitar-despain"
            else LockStyle.TTAS)


def _config(protocol: str, n: int, *, num_blocks: int = 8,
            assoc: int | None = None, horizon: int = 2_000,
            topology: TopologyConfig | None = None) -> SystemConfig:
    wpb = 1 if protocol == "rudolph-segall" else 4
    return SystemConfig(
        num_processors=n,
        protocol=protocol,
        cache=CacheConfig(words_per_block=wpb, num_blocks=num_blocks,
                          assoc=assoc),
        # The classic write-through scheme legitimately yields stale reads
        # (Section F.1); everything else must serialize.
        strict_verify=protocol != "write-through",
        deadlock_horizon=horizon,
        topology=topology,
    )


def _lowered(protocol: str, programs: list[Program]) -> list[Program]:
    style = lock_style_for(protocol)
    return [program.lowered(style) for program in programs]


# -- expectations -----------------------------------------------------------


def _expect_lock_handoff(n: int) -> Callable[[object], None]:
    def check(sim) -> None:
        acquired = sum(p.stats.lock_acquisitions for p in sim.processors)
        if acquired != n:
            raise ExpectationError(
                f"expected {n} lock acquisitions, saw {acquired}"
            )
        if sim.stats.lost_updates != 0:
            raise ExpectationError(
                f"writes under the lock serialized out of stamp order "
                f"({sim.stats.lost_updates} lost updates)"
            )
        if sim.config.strict_verify and sim.stats.stale_reads != 0:
            raise ExpectationError(
                f"{sim.stats.stale_reads} stale reads under the lock"
            )
    return check


def _expect_single_winner(sim) -> None:
    if sim.stats.failed_lock_attempts != 1:
        raise ExpectationError(
            "exactly one of two racing test-and-sets must fail; "
            f"saw {sim.stats.failed_lock_attempts} failures"
        )


# -- builders ---------------------------------------------------------------


def _lock_handoff(protocol: str):
    config = _config(protocol, 2)
    programs = [
        Program(ops=[lock(LOCK_WORD), write(DATA_WORD, value=10 + pid),
                     read(DATA_WORD), unlock(LOCK_WORD)],
                name=f"handoff-{pid}")
        for pid in range(2)
    ]
    return config, _lowered(protocol, programs)


def _three_way_lock(protocol: str):
    config = _config(protocol, 3)
    programs = [
        Program(ops=[lock(LOCK_WORD), write(DATA_WORD, value=10 + pid),
                     unlock(LOCK_WORD)],
                name=f"three-way-{pid}")
        for pid in range(3)
    ]
    return config, _lowered(protocol, programs)


def _tas_race(protocol: str):
    config = _config(protocol, 2)
    programs = [
        Program(ops=[rmw(LOCK_WORD, test_and_set(pid + 1), value=pid + 1),
                     read(DATA_WORD)],
                name=f"tas-{pid}")
        for pid in range(2)
    ]
    return config, programs


def _racing_writes(protocol: str):
    config = _config(protocol, 2)
    programs = [
        Program(ops=[write(DATA_WORD, value=pid + 1), read(DATA_WORD)],
                name=f"race-{pid}")
        for pid in range(2)
    ]
    return config, programs


def _shared_upgrade(protocol: str):
    config = _config(protocol, 2)
    return config, [
        Program(ops=[read(DATA_WORD), write(DATA_WORD, value=7)],
                name="upgrader"),
        Program(ops=[read(DATA_WORD), read(DATA_WORD)], name="reader"),
    ]


def _read_share(protocol: str):
    config = _config(protocol, 3)
    return config, [
        Program(ops=[write(DATA_WORD, value=3)], name="writer"),
        Program(ops=[read(DATA_WORD)], name="reader-1"),
        Program(ops=[read(DATA_WORD)], name="reader-2"),
    ]


def _directory_upgrade(protocol: str):
    # The shared-upgrade access pattern served by the directory fabric
    # instead of a broadcast bus: the home bank must keep the reader in
    # the block's sharer vector for as long as its copy is live, or the
    # upgrade never reaches it.
    config = _config(protocol, 2,
                     topology=TopologyConfig(kind="directory"))
    return config, [
        Program(ops=[read(DATA_WORD), write(DATA_WORD, value=7)],
                name="upgrader"),
        Program(ops=[read(DATA_WORD), read(DATA_WORD)], name="reader"),
    ]


def _directory_overflow(protocol: str):
    # The same upgrade-over-shared-copy pattern, but the home bank tracks
    # sharers with a one-pointer limited-pointer entry: the second reader
    # overflows it, and from then on only a broadcast probe (the OVERFLOW
    # rows' probe-all) can reach the untracked copy.
    config = _config(protocol, 2,
                     topology=TopologyConfig(kind="directory",
                                             directory_entry="limited-pointer",
                                             directory_pointers=1))
    return config, [
        Program(ops=[read(DATA_WORD), write(DATA_WORD, value=7)],
                name="upgrader"),
        Program(ops=[read(DATA_WORD), read(DATA_WORD)], name="reader"),
    ]


def _evict_writeback(protocol: str):
    # Two direct-mapped frames: the second and third reads evict the
    # dirty first block, forcing the write-back path.
    config = _config(protocol, 2, num_blocks=2, assoc=1)
    wpb = config.cache.words_per_block
    far = 2 * config.cache.num_sets * wpb  # same set as word 0
    return config, [
        Program(ops=[write(0, value=5), read(far), read(2 * far)],
                name="evictor"),
        Program(ops=[read(0)], name="checker"),
    ]


#: Registry of all scenarios, by name.
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            name="lock-handoff",
            description="Two processors serialize a write+read through one "
                        "lock (hard atom, Section E.3).",
            build=_lock_handoff,
            expect=_expect_lock_handoff(2),
        ),
        Scenario(
            name="tas-race",
            description="Two racing atomic test-and-sets; exactly one may "
                        "win (Feature 6).",
            build=_tas_race,
            expect=_expect_single_winner,
        ),
        Scenario(
            name="racing-writes",
            description="Unsynchronized writes and reads of one word; "
                        "every read must still see the latest serialized "
                        "write.",
            build=_racing_writes,
        ),
        Scenario(
            name="shared-upgrade",
            description="Write privilege upgraded over a shared copy "
                        "(Feature 4); the other copy must not go stale.",
            build=_shared_upgrade,
        ),
        Scenario(
            name="directory-upgrade",
            description="Write privilege upgraded over a shared copy, with "
                        "the directory fabric routing the probes: the home "
                        "bank's sharer vector must still reach every live "
                        "copy.",
            build=_directory_upgrade,
        ),
        Scenario(
            name="directory-overflow",
            description="Upgrade over a shared copy with a one-pointer "
                        "limited-pointer directory entry: once the entry "
                        "overflows, only the OVERFLOW rows' broadcast probe "
                        "reaches the untracked copy.",
            build=_directory_overflow,
        ),
        Scenario(
            name="evict-writeback",
            description="A dirty block is evicted by conflict misses; the "
                        "write-back must keep the latest version reachable.",
            build=_evict_writeback,
        ),
        Scenario(
            name="read-share",
            description="Two readers fetch a block a third cache wrote "
                        "(read-source arbitration, Feature 8).",
            build=_read_share,
            exhaustive=False,
        ),
        Scenario(
            name="three-way-lock",
            description="Three-way lock contention: the waiter-wake "
                        "arbitration (Figure 9) under every ordering.",
            build=_three_way_lock,
            expect=_expect_lock_handoff(3),
            exhaustive=False,
        ),
    ]
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
