"""Seeded protocol bugs for mutation-testing the checker and linter.

Each mutation re-introduces a *classic* coherence/synchronization bug --
the kind the paper's design rules exist to exclude.  Since the protocols
are transition tables, most bugs are seeded the way a real one would
arrive: by editing a table row (dropping a row, keeping a copy valid,
granting write privilege to shared data, forgetting a handoff action).
The two remaining mutations patch genuinely procedural machinery (the
bus response combine, the purge flush) that no table row expresses.

The harness then asserts that every seeded bug is caught: table-row
mutations must additionally be flagged by the static protocol linter
(``repro lint``), and *all* mutations must produce a model-checker
counterexample -- the evidence that the linter's rules and the checker's
invariants, oracle, and liveness watchdog actually have teeth.

Every mutation names the protocol and scenario it targets, so the
harness knows where the bug is observable (e.g. a dropped unlock
broadcast needs lock contention to matter).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, ContextManager

from repro.bus.signals import BusResponse
from repro.cache.state import CacheState
from repro.core.lock_protocol import BitarDespainProtocol
from repro.protocols.base import CoherenceProtocol
from repro.protocols.illinois import IllinoisProtocol
from repro.protocols.table import Event, TransitionTable


@contextmanager
def _patched(owner, attr: str, value):
    """Temporarily replace ``owner.attr``, restoring the exact original
    class dict entry afterwards (including *absence*, so patched base
    methods do not get frozen onto subclasses)."""
    had = attr in owner.__dict__
    original = owner.__dict__.get(attr)
    setattr(owner, attr, value)
    try:
        yield
    finally:
        if had:
            setattr(owner, attr, original)
        else:
            delattr(owner, attr)


@dataclass(frozen=True)
class Mutation:
    """One seeded bug: a name, where it bites, and how to apply it."""

    name: str
    description: str
    #: Protocol the bug is seeded into / observable on.
    protocol: str
    #: Scenario whose schedule space exposes it.
    scenario: str
    #: Which check is expected to catch it (documentation for reports).
    caught_by: str
    apply: Callable[[], ContextManager]
    #: For table-row mutations: build the mutated table, so the harness
    #: can run the static linter over it.  None for procedural bugs.
    table_builder: Callable[[], TransitionTable] | None = None
    #: Lint check expected to flag the mutated table (None: the bug is
    #: invisible to static lint and only dynamic checking can find it).
    lint_check: str | None = None


def _table_patch(cls, builder: Callable[[], TransitionTable]):
    return lambda: _patched(cls, "table", builder())


def _directory_table_patch(builder: Callable[[], TransitionTable]):
    """Patch the home-bank policy on the directory fabric class (the
    fabric resolves its compiled dispatch per instance, so instances
    created under the patch honour it)."""
    def apply():
        from repro.directory_backend.system import DirectoryFabric

        return _patched(DirectoryFabric, "table", builder())
    return apply


# -- the bugs ---------------------------------------------------------------


def _drop_snoop_upgrade_row() -> TransitionTable:
    """The (READ, sn-upgrade) row is simply missing: a snooped upgrade
    reaches a reader and the protocol has no answer."""
    return IllinoisProtocol.table.without(CacheState.READ, Event.SN_UPGRADE)


def _skip_invalidate_on_upgrade() -> TransitionTable:
    """Snooped write-privilege upgrades no longer invalidate the local
    copy (Feature 4 broken): a stale readable copy survives next to a
    writer."""
    return IllinoisProtocol.table.rewrite(
        CacheState.READ, Event.SN_UPGRADE, next_state=CacheState.READ
    )


def _shared_fill_write_privilege() -> TransitionTable:
    """A read miss that hit in another cache still lands with write
    privilege (Feature 5's determination inverted): the writer never
    announces its writes to the other holders."""
    return IllinoisProtocol.table.rewrite(
        CacheState.INVALID, Event.FILL_READ, when="shared",
        next_state=CacheState.WRITE_CLEAN,
    )


def _drop_unlock_broadcast() -> TransitionTable:
    """The unlock 'forgets' to broadcast even when a waiter was recorded
    (Section E.4's handoff silently dropped): waiters sleep forever."""
    return BitarDespainProtocol.table.rewrite(
        CacheState.LOCK_WAITER, Event.PR_UNLOCK,
        drop_actions=["broadcast-unlock"],
    )


def _ignore_lock_refusal() -> TransitionTable:
    """A locked holder answers like a plain reader instead of refusing
    (Figure 7 dropped): memory services the second lock fetch and two
    caches both believe they hold the lock."""
    table = BitarDespainProtocol.table
    for event in (Event.SN_READ, Event.SN_EXCL, Event.SN_UPGRADE):
        for state in (CacheState.LOCK, CacheState.LOCK_WAITER):
            table = table.rewrite(state, event, actions=(),
                                  next_state=state)
    return table


def _stale_memory_supply() -> ContextManager:
    """The bus ignores cache suppliers and always services fetches from
    memory (Feature 7's dirty hand-off lost): under a no-flush protocol
    the fetcher reads stale data."""
    original = BusResponse.combine

    def broken_combine(replies, choose=None) -> BusResponse:
        response = original(replies, choose=choose)
        response.supplier = None
        response.supplier_dirty = False
        return response

    return _patched(BusResponse, "combine", staticmethod(broken_combine))


def _drop_directory_ack() -> ContextManager:
    """The directory loses an invalidation ack: after each transaction's
    membership refresh the home bank drops the highest-numbered sharer
    from the block's entry, so later transactions never probe that cache
    and its stale copy keeps answering local reads."""
    from repro.directory_backend.system import DirectoryFabric

    original = DirectoryFabric._refresh

    def broken_refresh(self, txn, probed):
        original(self, txn, probed)
        entry = self._entry_of(txn)
        if len(entry.sharers) > 1:
            entry.sharers.discard(max(entry.sharers))

    return _patched(DirectoryFabric, "_refresh", broken_refresh)


def _directory_lost_requester() -> TransitionTable:
    """A fetch at a shared entry neither enrolls the requester nor
    refreshes membership: the new copy is untracked, so a later upgrade
    never probes it and the stale copy keeps answering local reads."""
    from repro.directory_backend.table import (HOME_BANK_TABLE, DirEvent,
                                               HomeState)

    return HOME_BANK_TABLE.rewrite(
        HomeState.SHARED, DirEvent.REQ_FETCH,
        drop_actions=("enroll", "refresh"),
    )


def _directory_skip_probe() -> TransitionTable:
    """Upgrades at a shared entry skip the probe: the listed readers are
    never invalidated (membership itself stays correct -- the refresh
    only covers the requester), so their copies silently go stale."""
    from repro.directory_backend.table import (HOME_BANK_TABLE, DirEvent,
                                               HomeState)

    return HOME_BANK_TABLE.rewrite(
        HomeState.SHARED, DirEvent.REQ_UPGRADE,
        drop_actions=("probe-listed",),
    )


def _directory_narrow_probe() -> TransitionTable:
    """An overflowed entry is probed as if it were precise: upgrades
    only reach the sharers still listed, and the untracked copy the
    overflow lost keeps reading stale data."""
    from repro.directory_backend.table import (HOME_BANK_TABLE, DirEvent,
                                               HomeState)

    row = HOME_BANK_TABLE.rules_for(HomeState.OVERFLOW,
                                    DirEvent.REQ_UPGRADE)[0]
    narrowed = tuple("probe-listed" if action == "probe-all" else action
                     for action in row.actions)
    return HOME_BANK_TABLE.rewrite(HomeState.OVERFLOW,
                                   DirEvent.REQ_UPGRADE, actions=narrowed)


def _directory_drop_row() -> TransitionTable:
    """The (SHARED, req-upgrade) row is simply missing: an upgrade
    reaches a shared entry and the home bank has no answer."""
    from repro.directory_backend.table import (HOME_BANK_TABLE, DirEvent,
                                               HomeState)

    return HOME_BANK_TABLE.without(HomeState.SHARED, DirEvent.REQ_UPGRADE)


def _lost_dirty_purge() -> ContextManager:
    """Dirty victims are purged without the write-back flush: the only
    up-to-date copy of the block is silently dropped."""

    def broken_purge_needs_flush(self, line) -> bool:
        return False

    return _patched(CoherenceProtocol, "purge_needs_flush",
                    broken_purge_needs_flush)


#: Registry of every seeded bug, by name.
MUTATIONS: dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in [
        Mutation(
            name="drop-snoop-upgrade-row",
            description="The reader's snoop-upgrade row is missing; the "
                        "interpreter has no transition for a snooped "
                        "upgrade at READ.",
            protocol="illinois",
            scenario="shared-upgrade",
            caught_by="lint completeness / interpreter lookup error",
            apply=_table_patch(IllinoisProtocol, _drop_snoop_upgrade_row),
            table_builder=_drop_snoop_upgrade_row,
            lint_check="completeness",
        ),
        Mutation(
            name="skip-invalidate-on-upgrade",
            description="Snooped upgrades keep the local copy valid, "
                        "leaving a stale reader beside a writer.",
            protocol="illinois",
            scenario="shared-upgrade",
            caught_by="lint write-serialization / write oracle",
            apply=_table_patch(IllinoisProtocol, _skip_invalidate_on_upgrade),
            table_builder=_skip_invalidate_on_upgrade,
            lint_check="write-serialization",
        ),
        Mutation(
            name="shared-fill-write-privilege",
            description="A shared read miss still fills with write "
                        "privilege; the writer then writes locally "
                        "without telling the other holders.",
            protocol="illinois",
            scenario="shared-upgrade",
            caught_by="lint write-serialization / write oracle",
            apply=_table_patch(IllinoisProtocol, _shared_fill_write_privilege),
            table_builder=_shared_fill_write_privilege,
            lint_check="write-serialization",
        ),
        Mutation(
            name="drop-unlock-broadcast",
            description="Unlock never broadcasts; recorded waiters are "
                        "stranded on their busy-wait registers.",
            protocol="bitar-despain",
            scenario="lock-handoff",
            caught_by="lint lock-state / deadlock watchdog",
            apply=_table_patch(BitarDespainProtocol, _drop_unlock_broadcast),
            table_builder=_drop_unlock_broadcast,
            lint_check="lock-state",
        ),
        Mutation(
            name="ignore-lock-refusal",
            description="A locked holder answers like a plain reader "
                        "instead of refusing, letting a second cache "
                        "take the lock.",
            protocol="bitar-despain",
            scenario="lock-handoff",
            caught_by="lint write-serialization / write oracle",
            apply=_table_patch(BitarDespainProtocol, _ignore_lock_refusal),
            table_builder=_ignore_lock_refusal,
            lint_check="write-serialization",
        ),
        Mutation(
            name="stale-memory-supply",
            description="Fetches are always serviced by memory even when "
                        "a cache holds the block dirty (no-flush "
                        "hand-off lost).",
            protocol="bitar-despain",
            scenario="racing-writes",
            caught_by="write oracle (stale read)",
            apply=_stale_memory_supply,
        ),
        Mutation(
            name="drop-directory-ack",
            description="The home bank drops a live sharer from the "
                        "block's directory entry (a lost invalidation "
                        "ack); later upgrades never probe that cache and "
                        "its stale copy survives.",
            protocol="bitar-despain",
            scenario="directory-upgrade",
            caught_by="write oracle (stale read)",
            apply=_drop_directory_ack,
        ),
        Mutation(
            name="directory-lost-requester",
            description="A fetch at a shared entry neither enrolls the "
                        "requester nor refreshes membership; the new "
                        "copy is untracked and later upgrades miss it.",
            protocol="bitar-despain",
            scenario="directory-upgrade",
            caught_by="lint directory-sharer-drop / write oracle",
            apply=_directory_table_patch(_directory_lost_requester),
            table_builder=_directory_lost_requester,
            lint_check="directory-sharer-drop",
        ),
        Mutation(
            name="directory-skip-probe",
            description="Upgrades at a shared entry never probe the "
                        "listed readers; their copies silently go "
                        "stale.",
            protocol="bitar-despain",
            scenario="directory-upgrade",
            caught_by="lint directory-sharer-drop / write oracle",
            apply=_directory_table_patch(_directory_skip_probe),
            table_builder=_directory_skip_probe,
            lint_check="directory-sharer-drop",
        ),
        Mutation(
            name="directory-narrow-probe",
            description="An overflowed (imprecise) entry is probed as "
                        "if it were precise; the copy the overflow lost "
                        "keeps reading stale data.",
            protocol="bitar-despain",
            scenario="directory-overflow",
            caught_by="lint directory-overflow-policy / write oracle",
            apply=_directory_table_patch(_directory_narrow_probe),
            table_builder=_directory_narrow_probe,
            lint_check="directory-overflow-policy",
        ),
        Mutation(
            name="directory-drop-row",
            description="The home bank's (SHARED, req-upgrade) row is "
                        "missing; dispatch has no transition for an "
                        "upgrade at a shared entry.",
            protocol="bitar-despain",
            scenario="directory-upgrade",
            caught_by="lint directory-completeness / dispatch lookup error",
            apply=_directory_table_patch(_directory_drop_row),
            table_builder=_directory_drop_row,
            lint_check="directory-completeness",
        ),
        Mutation(
            name="lost-dirty-purge",
            description="Evicting a dirty block skips the write-back "
                        "flush, dropping the latest version.",
            protocol="bitar-despain",
            scenario="evict-writeback",
            caught_by="latest-version-reachable invariant",
            apply=_lost_dirty_purge,
        ),
    ]
}


def get_mutation(name: str) -> Mutation:
    try:
        return MUTATIONS[name]
    except KeyError:
        known = ", ".join(sorted(MUTATIONS))
        raise KeyError(f"unknown mutation {name!r} (known: {known})") from None
