"""Seeded protocol bugs for mutation-testing the checker.

Each mutation re-introduces a *classic* coherence/synchronization bug --
the kind the paper's design rules exist to exclude -- as a reversible
monkey-patch over the protocol/bus classes.  The mutation harness then
asserts that the model checker finds a counterexample for every one of
them, which is the evidence that the checker's invariants, oracle, and
liveness watchdog actually have teeth.

Every mutation names the protocol and scenario it targets, so the
harness knows where the bug is observable (e.g. a dropped unlock
broadcast needs lock contention to matter).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, ContextManager

from repro.bus.signals import BusResponse, SnoopReply
from repro.bus.transaction import BusOp
from repro.cache.state import CacheState
from repro.core.lock_protocol import BitarDespainProtocol
from repro.protocols.base import CoherenceProtocol


@contextmanager
def _patched(owner, attr: str, value):
    """Temporarily replace ``owner.attr``, restoring the exact original
    class dict entry afterwards (including *absence*, so patched base
    methods do not get frozen onto subclasses)."""
    had = attr in owner.__dict__
    original = owner.__dict__.get(attr)
    setattr(owner, attr, value)
    try:
        yield
    finally:
        if had:
            setattr(owner, attr, original)
        else:
            delattr(owner, attr)


@dataclass(frozen=True)
class Mutation:
    """One seeded bug: a name, where it bites, and how to apply it."""

    name: str
    description: str
    #: Protocol the bug is seeded into / observable on.
    protocol: str
    #: Scenario whose schedule space exposes it.
    scenario: str
    #: Which check is expected to catch it (documentation for reports).
    caught_by: str
    apply: Callable[[], ContextManager]


# -- the bugs ---------------------------------------------------------------


def _drop_unlock_broadcast() -> ContextManager:
    """The unlock 'forgets' to broadcast even when a waiter was recorded
    (Section E.4's handoff silently dropped): waiters sleep forever."""

    def broken_release(self, line) -> None:
        line.state = CacheState.WRITE_DIRTY

    return _patched(BitarDespainProtocol, "_release", broken_release)


def _ignore_lock_refusal() -> ContextManager:
    """A locked holder replies 'miss' instead of refusing (Figure 7
    dropped): memory services the second lock fetch and two caches both
    believe they hold the lock."""
    original = BitarDespainProtocol.snoop

    def broken_snoop(self, line, txn) -> SnoopReply:
        if line.state.locked and (txn.op.fetches_block
                                  or txn.op is BusOp.UPGRADE):
            return SnoopReply.miss()
        return original(self, line, txn)

    return _patched(BitarDespainProtocol, "snoop", broken_snoop)


def _skip_invalidate_on_upgrade() -> ContextManager:
    """Snooped write-privilege upgrades no longer invalidate the local
    copy (Feature 4 broken): a stale readable copy survives next to a
    writer."""
    original = CoherenceProtocol.snoop_exclusive

    def broken_snoop_exclusive(self, line, txn) -> SnoopReply:
        if txn.op is BusOp.UPGRADE:
            return SnoopReply(hit=True)  # keeps the copy valid
        return original(self, line, txn)

    return _patched(CoherenceProtocol, "snoop_exclusive",
                    broken_snoop_exclusive)


def _stale_memory_supply() -> ContextManager:
    """The bus ignores cache suppliers and always services fetches from
    memory (Feature 7's dirty hand-off lost): under a no-flush protocol
    the fetcher reads stale data."""
    original = BusResponse.combine

    def broken_combine(replies, choose=None) -> BusResponse:
        response = original(replies, choose=choose)
        response.supplier = None
        response.supplier_dirty = False
        return response

    return _patched(BusResponse, "combine", staticmethod(broken_combine))


def _lost_dirty_purge() -> ContextManager:
    """Dirty victims are purged without the write-back flush: the only
    up-to-date copy of the block is silently dropped."""

    def broken_purge_needs_flush(self, line) -> bool:
        return False

    return _patched(CoherenceProtocol, "purge_needs_flush",
                    broken_purge_needs_flush)


#: Registry of every seeded bug, by name.
MUTATIONS: dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in [
        Mutation(
            name="drop-unlock-broadcast",
            description="Unlock never broadcasts; recorded waiters are "
                        "stranded on their busy-wait registers.",
            protocol="bitar-despain",
            scenario="lock-handoff",
            caught_by="waiter-liveness invariant / deadlock watchdog",
            apply=_drop_unlock_broadcast,
        ),
        Mutation(
            name="ignore-lock-refusal",
            description="A locked holder answers 'miss' instead of "
                        "refusing, letting a second cache take the lock.",
            protocol="bitar-despain",
            scenario="lock-handoff",
            caught_by="single-writer invariant / write oracle",
            apply=_ignore_lock_refusal,
        ),
        Mutation(
            name="skip-invalidate-on-upgrade",
            description="Snooped upgrades keep the local copy valid, "
                        "leaving a stale reader beside a writer.",
            protocol="illinois",
            scenario="shared-upgrade",
            caught_by="single-writer invariant / write oracle",
            apply=_skip_invalidate_on_upgrade,
        ),
        Mutation(
            name="stale-memory-supply",
            description="Fetches are always serviced by memory even when "
                        "a cache holds the block dirty (no-flush "
                        "hand-off lost).",
            protocol="bitar-despain",
            scenario="racing-writes",
            caught_by="write oracle (stale read)",
            apply=_stale_memory_supply,
        ),
        Mutation(
            name="lost-dirty-purge",
            description="Evicting a dirty block skips the write-back "
                        "flush, dropping the latest version.",
            protocol="bitar-despain",
            scenario="evict-writeback",
            caught_by="latest-version-reachable invariant",
            apply=_lost_dirty_purge,
        ),
    ]
}


def get_mutation(name: str) -> Mutation:
    try:
        return MUTATIONS[name]
    except KeyError:
        known = ", ".join(sorted(MUTATIONS))
        raise KeyError(f"unknown mutation {name!r} (known: {known})") from None
