"""Canonical state fingerprints for the schedule-space explorer.

Two runs that reach the same *behavioral* state will behave identically
under identical future schedules, so the explorer prunes any branch that
revisits a fingerprint it has already expanded.  The fingerprint must
therefore cover everything that can influence future transitions:

* every cache's valid lines (tag, state, word stamps, sub-block dirty
  bits) plus the LRU ordering within each set (it picks future victims);
* the busy-wait register, in-flight pending access, detached request
  queue, and RMW hold of each cache;
* main memory's block contents, lock tags, and source bits;
* each processor's program counter, state machine, spin expansion, and
  held locks;
* the bus occupancy (relative to the current cycle), its active port,
  and the arbiter's round-robin pointer;
* the stamp clock and the oracle's latest-write map.

Purely statistical quantities (counters, latency accumulators) are
deliberately excluded: they never feed back into behaviour.  Absolute
cycle numbers are excluded for the same reason -- only *relative* times
(remaining bus occupancy, LRU rank order) matter, which is what lets
runs of different lengths share fingerprints.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.protocols.base import NeedBus


def _freeze(value: Any) -> Any:
    """Recursively convert a value into a hashable canonical form."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    if isinstance(value, enum.Enum):
        return value.value
    return value


def _need_sig(need: NeedBus | None):
    if need is None:
        return None
    return (
        need.op.name,
        need.word,
        need.stamp,
        need.lock_intent,
        need.high_priority,
        need.update_invalid,
        need.extra_hold,
    )


def _op_sig(op) -> tuple:
    return (
        op.kind.value,
        op.addr,
        op.cycles,
        op.value,
        op.private_hint,
        op.ready_work,
        op.stamp,
        op.result,
        op.aborted,
    )


def _pending_sig(pending) -> tuple | None:
    if pending is None:
        return None
    return (
        _op_sig(pending.op),
        _need_sig(pending.request),
        pending.phase,
        pending.lock_wait,
        pending.write_applied,
        _need_sig(pending.retry_request),
        pending.ready,
        pending.completed,
    )


def _array_sig(array) -> tuple:
    sets_sig = []
    for frames in array._sets:
        # LRU *rank order* (not absolute cycles) decides future victims.
        rank = tuple(sorted(range(len(frames)),
                            key=lambda i: frames[i].last_used))
        lines = tuple(
            (
                line.block,
                line.state.value,
                tuple(line.words),
                tuple(line.unit_dirty) if line.unit_dirty is not None else None,
                tuple(line.unit_valid) if line.unit_valid is not None else None,
            )
            for line in frames
        )
        sets_sig.append((lines, rank))
    return tuple(sets_sig)


def _cache_sig(cache) -> tuple:
    return (
        cache.id,
        _array_sig(cache.array),
        (cache.busy_wait.phase.value, cache.busy_wait.block),
        _pending_sig(cache._pending),
        tuple((_need_sig(need), block) for need, block in cache._detached),
        cache._held_block,
        _freeze(cache.scratch),
    )


def _processor_sig(processor) -> tuple:
    return (
        processor.pid,
        processor._pc,
        processor._state.value,
        processor._compute_left,
        processor._spin.value,
        processor._ready_work_left,
        _op_sig(processor._pending_spin_result)
        if processor._pending_spin_result is not None else None,
        tuple(sorted(processor._lock_held_since)),
    )


def _bus_sig(bus, now: int) -> tuple:
    buses = bus.buses if hasattr(bus, "buses") else [bus]
    sig = []
    for one in buses:
        arbiter = one._arbiter
        sig.append((
            max(0, one._busy_until - now),
            one._active_port.id if one._active_port is not None else None,
            arbiter._last_winner_index if arbiter is not None else None,
        ))
    return tuple(sig)


def _memory_sig(memory) -> tuple:
    return (
        tuple(sorted((block, tuple(words))
                     for block, words in memory._blocks.items())),
        tuple(sorted((block, tag.owner, tag.waiter)
                     for block, tag in memory._lock_tags.items())),
        tuple(sorted(memory._source_bits.items())),
    )


def state_signature(sim) -> tuple:
    """The full canonical behavioral state of a simulator, as a tuple."""
    now = sim.clock.cycle
    return (
        tuple(_cache_sig(cache) for cache in sim.caches),
        tuple(_processor_sig(p) for p in sim.processors),
        _bus_sig(sim.bus, now),
        _memory_sig(sim.memory),
        sim.stamp_clock._next,
        tuple(sorted(sim.stamp_clock._values.items())),
        tuple(sorted(sim.oracle._latest.items())),
    )


def fingerprint(sim) -> int:
    """Hash of :func:`state_signature` (collision risk is negligible for
    the search sizes the explorer bounds itself to, and a false collision
    can only prune, never fabricate a failure)."""
    return hash(state_signature(sim))
