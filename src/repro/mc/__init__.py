"""Schedule-space model checker and interleaving fuzzer.

``repro.mc`` treats every nondeterministic engine decision (bus
arbitration, waiter wake order, processor issue order, read-source
arbitration) as an explicit choice point, then drives the simulator
through schedule space three ways:

* :func:`explore` -- exhaustive DFS over all interleavings of a small
  scenario, with canonical state hashing to prune converged branches;
* :func:`fuzz` -- seeded random schedules with delta-debugging
  shrinking of any failure into a minimal replayable trace;
* :func:`check` -- the orchestration the CLI/API expose: exploration +
  fuzzing + the seeded-bug mutation harness, in one report.

See ``docs/model_checking.md`` for the full story.
"""

from repro.mc.check import CheckReport, MutationResult, check, test_mutation
from repro.mc.counterexample import Counterexample, from_outcome
from repro.mc.explore import ExploreResult, explore
from repro.mc.fuzz import FuzzResult, fuzz
from repro.mc.hashing import fingerprint, state_signature
from repro.mc.mutations import MUTATIONS, Mutation, get_mutation
from repro.mc.runner import (DEFAULT_MAX_CYCLES, Failure, ScheduleOutcome,
                             build_sim, run_schedule)
from repro.mc.scenarios import (SCENARIOS, ExpectationError, Scenario,
                                get_scenario)
from repro.mc.shrink import ShrinkResult, shrink

__all__ = [
    "CheckReport",
    "MutationResult",
    "check",
    "test_mutation",
    "Counterexample",
    "from_outcome",
    "ExploreResult",
    "explore",
    "FuzzResult",
    "fuzz",
    "fingerprint",
    "state_signature",
    "MUTATIONS",
    "Mutation",
    "get_mutation",
    "DEFAULT_MAX_CYCLES",
    "Failure",
    "ScheduleOutcome",
    "build_sim",
    "run_schedule",
    "SCENARIOS",
    "ExpectationError",
    "Scenario",
    "get_scenario",
    "ShrinkResult",
    "shrink",
]
