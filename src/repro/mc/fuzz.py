"""Randomized schedule fuzzing.

Complementary to the exhaustive explorer: where exhaustion is bounded to
tiny configurations, the fuzzer drives any scenario with seeded random
schedulers, recording each run's decisions so a failing run can be
replayed and shrunk into a minimal counterexample.  Seeds make every
fuzzing session reproducible: ``fuzz(..., seeds=range(100))`` always
runs the same hundred schedules.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import WatchdogTimeout
from repro.mc.counterexample import Counterexample, from_outcome
from repro.mc.runner import run_schedule
from repro.mc.scenarios import Scenario
from repro.mc.shrink import shrink
from repro.sim.schedule import RandomScheduler


@dataclass
class FuzzResult:
    """Outcome of one fuzzing session over one (scenario, protocol)."""

    scenario: str
    protocol: str
    mutation: str | None = None
    runs: int = 0
    #: Seed that produced the failure, if any.
    failing_seed: int | None = None
    counterexample: Counterexample | None = None
    #: Re-runs the shrinker spent minimizing.
    shrink_runs: int = 0
    elapsed_seconds: float = 0.0
    #: True when the time budget cut the session short (between runs or
    #: mid-run via the engine watchdog).
    budget_exhausted: bool = False
    #: Seconds the session ran past its budget before the watchdog (or
    #: the between-runs check) stopped it; 0.0 when within budget.
    budget_overshoot_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "mutation": self.mutation,
            "runs": self.runs,
            "failing_seed": self.failing_seed,
            "counterexample": (self.counterexample.to_dict()
                               if self.counterexample else None),
            "shrink_runs": self.shrink_runs,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "budget_exhausted": self.budget_exhausted,
            "budget_overshoot_seconds": round(
                self.budget_overshoot_seconds, 3),
        }


def fuzz(
    scenario: Scenario,
    protocol: str,
    *,
    seeds: Iterable[int] = range(64),
    time_budget: float | None = None,
    mutation=None,
    max_cycles: int | None = None,
    shrink_failures: bool = True,
) -> FuzzResult:
    """Run ``scenario`` under random schedules until a failure, the seed
    list, or the time budget (seconds) runs out.

    The budget is enforced *per run*, not just between runs: each run is
    handed the remaining budget as its engine-watchdog allowance, so a
    single slow schedule cannot blow the session's budget unboundedly --
    the watchdog aborts it and the session stops, reporting how far past
    the budget it got in :attr:`FuzzResult.budget_overshoot_seconds`."""
    result = FuzzResult(
        scenario=scenario.name,
        protocol=protocol,
        mutation=mutation.name if mutation is not None else None,
    )
    run_kwargs: dict = {"mutation": mutation}
    if max_cycles is not None:
        run_kwargs["max_cycles"] = max_cycles
    started = time.monotonic()
    for seed in seeds:
        if time_budget is not None:
            remaining = time_budget - (time.monotonic() - started)
            if remaining <= 0:
                result.budget_exhausted = True
                break
            run_kwargs["max_wall_seconds"] = remaining
        try:
            outcome = run_schedule(scenario, protocol,
                                   scheduler=RandomScheduler(seed),
                                   **run_kwargs)
        except WatchdogTimeout:
            # The budget expired mid-run; the aborted run yields no
            # verdict but still counts as work performed.
            result.runs += 1
            result.budget_exhausted = True
            break
        result.runs += 1
        if outcome.failure is None:
            continue
        result.failing_seed = seed
        schedule = outcome.schedule
        if shrink_failures:
            shrunk = shrink(scenario, protocol, schedule,
                            mutation=mutation, max_cycles=max_cycles)
            result.shrink_runs = shrunk.runs
            schedule, outcome = shrunk.schedule, shrunk.outcome
        result.counterexample = from_outcome(
            scenario, protocol, schedule, outcome,
            mutation=result.mutation, seed=seed,
        )
        break
    result.elapsed_seconds = time.monotonic() - started
    if time_budget is not None and result.elapsed_seconds > time_budget:
        result.budget_exhausted = True
        result.budget_overshoot_seconds = result.elapsed_seconds - time_budget
    return result
