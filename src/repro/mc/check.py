"""Top-level model-checking orchestration.

``check()`` is what ``repro check`` (CLI) and :func:`repro.api.check`
drive: for each requested protocol it exhaustively explores the small
scenarios, fuzzes the larger ones, optionally runs the mutation-testing
harness, and folds everything into one :class:`CheckReport` with every
counterexample shrunk, replayable, and (optionally) saved to disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.common.schema import stamp
from repro.mc.counterexample import Counterexample, from_outcome
from repro.mc.explore import ExploreResult, explore
from repro.mc.fuzz import FuzzResult, fuzz
from repro.mc.mutations import MUTATIONS, Mutation
from repro.mc.scenarios import SCENARIOS, Scenario, get_scenario
from repro.mc.shrink import shrink
from repro.protocols import PROTOCOLS


@dataclass
class MutationResult:
    """Did the checker catch one seeded bug?"""

    mutation: str
    protocol: str
    scenario: str
    caught: bool
    counterexample: Counterexample | None = None
    schedules: int = 0
    shrink_runs: int = 0
    #: Static-linter complaints about the mutated table (empty for
    #: procedural mutations, which no table expresses).
    lint_findings: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "mutation": self.mutation,
            "protocol": self.protocol,
            "scenario": self.scenario,
            "caught": self.caught,
            "schedules": self.schedules,
            "shrink_runs": self.shrink_runs,
            "lint_findings": [f.to_dict() for f in self.lint_findings],
            "counterexample": (self.counterexample.to_dict()
                               if self.counterexample else None),
        }


@dataclass
class CheckReport:
    """Everything one checking session established."""

    protocols: list[str] = field(default_factory=list)
    explorations: list[ExploreResult] = field(default_factory=list)
    fuzz_sessions: list[FuzzResult] = field(default_factory=list)
    mutation_results: list[MutationResult] = field(default_factory=list)
    counterexamples: list[Counterexample] = field(default_factory=list)
    #: Paths of saved counterexample files (when a directory was given).
    saved_paths: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Clean protocols *and* every seeded mutation caught."""
        return (
            all(r.ok for r in self.explorations)
            and all(r.ok for r in self.fuzz_sessions)
            and all(r.caught for r in self.mutation_results)
        )

    @property
    def schedules_explored(self) -> int:
        return sum(r.schedules for r in self.explorations) + sum(
            r.runs for r in self.fuzz_sessions
        )

    @property
    def budget_overshoot_seconds(self) -> float:
        """Total seconds fuzz sessions ran past their time budgets
        (each session's watchdog catches its own overshoot; this sums
        what slipped through before the aborts landed)."""
        return sum(r.budget_overshoot_seconds for r in self.fuzz_sessions)

    def to_dict(self) -> dict:
        return stamp({
            "kind": "check-report",
            "ok": self.ok,
            "protocols": list(self.protocols),
            "schedules_explored": self.schedules_explored,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "budget_overshoot_seconds": round(
                self.budget_overshoot_seconds, 3),
            "explorations": [r.to_dict() for r in self.explorations],
            "fuzz_sessions": [r.to_dict() for r in self.fuzz_sessions],
            "mutation_results": [r.to_dict() for r in self.mutation_results],
            "counterexamples": [c.to_dict() for c in self.counterexamples],
            "saved_paths": list(self.saved_paths),
        })


def _resolve_scenarios(names: Sequence[str] | None) -> list[Scenario]:
    if names is None:
        return list(SCENARIOS.values())
    return [get_scenario(name) for name in names]


def _shrunk_counterexample(scenario: Scenario, protocol: str,
                           schedule: list[int], *, mutation=None,
                           seed: int | None = None) -> tuple[Counterexample, int]:
    result = shrink(scenario, protocol, schedule, mutation=mutation)
    return (
        from_outcome(scenario, protocol, result.schedule, result.outcome,
                     mutation=mutation.name if mutation else None, seed=seed),
        result.runs,
    )


def test_mutation(mutation: Mutation, *, max_schedules: int = 2_000,
                  shrink_failures: bool = True) -> MutationResult:
    """Seed one bug and check that it is caught.

    Table-row mutations first go through the static protocol linter
    (``repro lint``); every mutation is then model-checked so a concrete
    counterexample backs the catch.  ``caught`` means *either* defense
    fired.
    """
    from repro.lint import lint_table  # local import: lint is optional here

    scenario = get_scenario(mutation.scenario)
    lint_findings = (lint_table(mutation.table_builder())
                     if mutation.table_builder is not None else [])
    exploration = explore(scenario, mutation.protocol, mutation=mutation,
                          max_schedules=max_schedules)
    result = MutationResult(
        mutation=mutation.name,
        protocol=mutation.protocol,
        scenario=mutation.scenario,
        caught=bool(lint_findings) or exploration.failure is not None,
        schedules=exploration.schedules,
        lint_findings=lint_findings,
    )
    if exploration.failure is not None and exploration.failing_schedule is not None:
        if shrink_failures:
            result.counterexample, result.shrink_runs = _shrunk_counterexample(
                scenario, mutation.protocol, exploration.failing_schedule,
                mutation=mutation,
            )
        else:
            result.counterexample = Counterexample(
                protocol=mutation.protocol,
                scenario=mutation.scenario,
                schedule=exploration.failing_schedule,
                failure=exploration.failure,
                mutation=mutation.name,
            )
    return result


def check(
    protocols: Iterable[str] | None = None,
    *,
    scenarios: Sequence[str] | None = None,
    exhaustive: bool = True,
    max_schedules: int = 20_000,
    fuzz_seeds: int = 32,
    fuzz_budget: float | None = None,
    mutations: Iterable[str] | bool = False,
    counterexample_dir: str | Path | None = None,
) -> CheckReport:
    """Model-check ``protocols`` (default: all ten).

    Scenarios marked exhaustive are fully explored (state-deduped DFS
    bounded by ``max_schedules``); the rest are fuzzed with
    ``fuzz_seeds`` seeded random schedules, collectively capped by
    ``fuzz_budget`` seconds when given.  ``mutations`` selects seeded
    bugs to run the mutation-testing harness on (``True`` = all).
    Counterexamples are shrunk and, when ``counterexample_dir`` is
    given, saved as replayable JSON.
    """
    started = time.monotonic()
    report = CheckReport(protocols=sorted(protocols)
                         if protocols is not None else sorted(PROTOCOLS))
    scenario_list = _resolve_scenarios(scenarios)
    deadline = (started + fuzz_budget) if fuzz_budget is not None else None

    fuzz_pairs = [
        (scenario, protocol)
        for protocol in report.protocols
        for scenario in scenario_list
        if not (scenario.exhaustive and exhaustive)
    ]

    for protocol in report.protocols:
        for scenario in scenario_list:
            if scenario.exhaustive and exhaustive:
                exploration = explore(scenario, protocol,
                                      max_schedules=max_schedules)
                report.explorations.append(exploration)
                if (exploration.failure is not None
                        and exploration.failing_schedule is not None):
                    ce, _ = _shrunk_counterexample(
                        scenario, protocol, exploration.failing_schedule)
                    report.counterexamples.append(ce)

    for index, (scenario, protocol) in enumerate(fuzz_pairs):
        time_left = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time_left = remaining / max(1, len(fuzz_pairs) - index)
        session = fuzz(scenario, protocol, seeds=range(fuzz_seeds),
                       time_budget=time_left)
        report.fuzz_sessions.append(session)
        if session.counterexample is not None:
            report.counterexamples.append(session.counterexample)

    if mutations:
        selected = (list(MUTATIONS.values()) if mutations is True
                    else [MUTATIONS[name] for name in mutations])
        for mutation in selected:
            result = test_mutation(mutation)
            report.mutation_results.append(result)
            if result.counterexample is not None:
                report.counterexamples.append(result.counterexample)

    if counterexample_dir is not None and report.counterexamples:
        directory = Path(counterexample_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for ce in report.counterexamples:
            tag = f"-{ce.mutation}" if ce.mutation else ""
            path = directory / f"{ce.protocol}-{ce.scenario}{tag}.json"
            ce.save(path)
            report.saved_paths.append(str(path))

    report.elapsed_seconds = time.monotonic() - started
    return report
