"""Fundamental value types shared by every subsystem.

The simulator addresses memory in *words*.  A cache block (line) holds
``words_per_block`` consecutive words; block addresses are word addresses
rounded down to a block boundary.  All identifiers are plain ints so that
they can be used freely as dict keys and in numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

# Type aliases -- used pervasively in signatures for readability.
WordAddr = int
BlockAddr = int
CacheId = int
ProcessorId = int
Cycle = int
Stamp = int

#: Cache id used for the I/O processor's bus port.
IO_CACHE_ID: CacheId = -1

#: Stamp value of a word that has never been written.
NEVER_WRITTEN: Stamp = 0

#: Sentinel cycle number meaning "no self-initiated event will ever
#: occur" -- returned by ``next_event_cycle()`` implementations for
#: components that can only be woken by someone else (e.g. a processor
#: parked on a lock waits for another cache's unlock broadcast).  A large
#: int rather than ``math.inf`` so arithmetic stays in the fast int path.
NEVER: Cycle = 1 << 62


def block_of(addr: WordAddr, words_per_block: int) -> BlockAddr:
    """Return the block address containing word ``addr``."""
    if words_per_block <= 0:
        raise ValueError(f"words_per_block must be positive, got {words_per_block}")
    return (addr // words_per_block) * words_per_block


def word_offset(addr: WordAddr, words_per_block: int) -> int:
    """Return the offset of word ``addr`` within its block."""
    return addr - block_of(addr, words_per_block)


@dataclass(frozen=True)
class AddressRange:
    """A contiguous range of word addresses ``[start, start + length)``."""

    start: WordAddr
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")

    def __contains__(self, addr: WordAddr) -> bool:
        return self.start <= addr < self.start + self.length

    def words(self) -> range:
        """Iterate over every word address in the range."""
        return range(self.start, self.start + self.length)

    def blocks(self, words_per_block: int) -> list[BlockAddr]:
        """Return the distinct block addresses the range touches, in order."""
        if self.length == 0:
            return []
        first = block_of(self.start, words_per_block)
        last = block_of(self.start + self.length - 1, words_per_block)
        return list(range(first, last + words_per_block, words_per_block))

    @property
    def end(self) -> WordAddr:
        return self.start + self.length
