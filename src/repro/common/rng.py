"""Deterministic random-number helpers.

Every stochastic component takes a seed and derives an independent
``random.Random`` stream, so a simulation is reproducible from its
:class:`~repro.common.config.SystemConfig` alone.
"""

from __future__ import annotations

import hashlib
import random


def derive_rng(seed: int, *path: object) -> random.Random:
    """Return an independent RNG stream for ``(seed, *path)``.

    The ``path`` components (e.g. ``("processor", 3)``) namespace the stream
    so that adding a consumer does not perturb unrelated streams.  The key
    is hashed with a *stable* hash: Python's built-in string ``hash`` is
    randomized per process, which would make "deterministic" workloads
    differ between runs.
    """
    key = "\x1f".join([str(seed)] + [str(p) for p in path]).encode()
    digest = hashlib.sha256(key).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def zipf_weights(n: int, skew: float) -> list[float]:
    """Return normalized Zipf(``skew``) weights over ``n`` items.

    Used by workload generators to produce skewed block popularity, the
    regime where sharing and lock contention actually occur.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    raw = [1.0 / (i**skew) for i in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: list[int], weights: list[float]) -> int:
    """Pick one item according to ``weights`` (which need not be normalized)."""
    return rng.choices(items, weights=weights, k=1)[0]
