"""Exception hierarchy for the reproduction library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class ProtocolError(ReproError):
    """A coherence protocol reached a state/transition the paper forbids.

    Figure 10 of the paper states "arcs not shown would be bugs"; this
    exception is the simulator's rendering of such a bug.
    """


class CoherenceViolation(ReproError):
    """A coherence invariant was violated during simulation (verify layer)."""


class SerializationViolation(ReproError):
    """A conflicting read/write pair was not serialized (hard-atom check)."""


class DeadlockError(ReproError):
    """The simulation made no progress for an implausibly long interval."""


class ProgramError(ReproError):
    """A processor program is malformed (e.g. unlock without a lock)."""


class UnknownProtocolError(ReproError, KeyError):
    """A protocol name is not present in the registry."""
