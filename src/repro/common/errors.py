"""Exception hierarchy for the reproduction library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class ProtocolError(ReproError):
    """A coherence protocol reached a state/transition the paper forbids.

    Figure 10 of the paper states "arcs not shown would be bugs"; this
    exception is the simulator's rendering of such a bug.
    """


class CoherenceViolation(ReproError):
    """A coherence invariant was violated during simulation (verify layer)."""


class SerializationViolation(ReproError):
    """A conflicting read/write pair was not serialized (hard-atom check)."""


class DeadlockError(ReproError):
    """The simulation made no progress for an implausibly long interval."""


class ProgramError(ReproError):
    """A processor program is malformed (e.g. unlock without a lock)."""


class UnknownProtocolError(ReproError, KeyError):
    """A protocol name is not present in the registry."""


class WatchdogTimeout(ReproError):
    """A run exceeded its wall-clock budget and was aborted mid-flight.

    Carries a ``diagnostics`` dict (bus state, per-cache pending access
    and busy-wait registers, per-processor progress) snapshotted at the
    moment the watchdog fired, so a wedged simulation is debuggable from
    the exception alone.
    """

    def __init__(self, message: str, *, diagnostics: dict | None = None,
                 elapsed_seconds: float = 0.0,
                 budget_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics or {}
        self.elapsed_seconds = elapsed_seconds
        self.budget_seconds = budget_seconds


class SweepPointError(ReproError):
    """One sweep point failed; names the point so a bare worker
    traceback is never the only evidence."""

    def __init__(self, message: str, *, x: object = None, index: int = -1,
                 attempts: int = 1) -> None:
        super().__init__(message)
        self.x = x
        self.index = index
        self.attempts = attempts


class FaultInjected(ReproError):
    """Raised by the fault-injection harness, never by real code paths."""


class ScenarioError(ReproError):
    """A declarative scenario is structurally invalid, or its compilation
    to per-processor programs failed (bad expression, unknown step,
    non-terminating step graph)."""


class LockStyleIgnoredWarning(UserWarning):
    """An explicit lock style was requested for a reference-stream
    workload that contains no lock/unlock operations, so the style
    cannot change the generated programs."""
