"""Versioning of every JSON artifact the library emits.

All exported payloads -- run statistics, observability metrics and
heatmaps, Chrome traces, sweep outputs, benchmark results, and model-
checker counterexamples -- carry a top-level ``schema_version`` key so
downstream tooling (``scripts/validate_trace.py``, ``scripts/
perf_guard.py``, CI artifact consumers) can refuse payloads it does not
understand instead of mis-parsing them.

The version is a single integer bumped on any backwards-incompatible
change to any exported payload shape.

Version history
---------------

1. Initial stamped payloads (run/sweep/check results, observability
   exports, benchmark files).
2. Resilient sweep execution: ``sweep-result`` payloads gain
   ``point_status`` (one ``{index, x, status, attempts, error}`` entry
   per point, ``status`` one of ``ok`` / ``failed`` / ``timeout`` /
   ``quarantined``) and ``resilience`` (retry/timeout/pool-restart
   counters); entries of ``points`` may be ``null`` for points that
   failed under a ``--keep-going`` sweep.  Migration: v1 readers that
   indexed ``points`` positionally keep working on fully-healthy
   sweeps; consumers of partial sweeps must skip ``null`` points (the
   per-point status says why each one is missing).
3. Compiled dispatch core: ``run-result`` and ``sweep-result`` payloads
   gain a top-level ``dispatch`` key (``"compiled"`` or
   ``"interpreted"``, the execution core that drove the protocol).
   ``BENCH_engine.json`` gains ``engine.dispatch`` (per-core
   stepped/fast-forward timings), a ``lookup`` section (the
   interpreted-vs-compiled table-lookup microbenchmark), and the
   ``sweep`` section's ``available_cpus`` is authoritative for whether
   the scaling assertion ran (see ``scripts/perf_guard.py``).
   Migration: v2 readers that ignore unknown keys keep working; the
   pre-existing ``engine.*`` timing keys still describe the default
   (compiled) core.
4. Causal tracing and cycle attribution: observability results gain
   ``spans`` (the causal span list) and ``attribution`` (the reduced
   per-processor cycle-attribution report); two new stamped artifact
   kinds, ``span-trace`` (``repro run --spans-out``) and
   ``attribution-report`` (``repro run --attribution FILE``), plus the
   derived ``attribution-comparison``.  Chrome traces may now carry
   flow events (``ph`` of ``s``/``t``/``f``) linking span slices.
   Registry snapshots are unchanged in shape, but histograms now merge
   across the sweep process boundary like counters (they were silently
   dropped before).  ``BENCH_engine.json`` gains an ``obs`` section
   (null-observer vs tracing-off vs tracing-on timings, the input to
   ``perf_guard``'s obs-overhead ceiling).  Migration: v3 readers that
   ignore unknown keys keep working; none of the pre-existing payload
   keys changed meaning.
5. Topology-aware fabrics: ``run-result`` and ``sweep-result`` payloads
   gain a top-level ``topology`` key (one of ``snoop`` / ``multibus`` /
   ``clustered`` / ``directory``, the interconnect fabric that carried
   the run).  ``SystemConfig`` serializations replace the bare
   ``num_buses`` integer with a nested ``topology`` object
   (``TopologyConfig.to_dict()``); legacy payloads carrying
   ``num_buses`` still load, mapping to a snoop/multibus topology with
   a deprecation warning.  ``BENCH_engine.json`` gains a ``topology``
   section (per-fabric bus/network messages per transaction at several
   processor counts, the snoop-vs-directory traffic crossover, and the
   directory@256 / snoop@16 throughput ratio guarded by
   ``perf_guard``).  Migration: v4 readers that ignore unknown keys
   keep working; readers of ``config.num_buses`` must switch to
   ``config.topology``.
6. Declarative scenarios: two new stamped artifact kinds, ``scenario``
   (a saved scenario spec, the ``scenarios/*.json`` corpus) and
   ``scenario-failure`` (a shrunk scenario-fuzzer counterexample:
   the failing spec, its alterations, system shape, schedule seed, and
   failure).  ``run-result`` payloads gain a top-level ``lock_style``
   key (the lock style the run's programs actually used, ``null`` for
   style-blind reference streams) -- previously an explicitly requested
   style could be silently discarded with no record in the artifact.
   Migration: v5 readers that ignore unknown keys keep working.
7. Directory-entry representations: ``run-result`` and ``sweep-result``
   payloads gain a top-level ``directory_entry`` key (the sharer-set
   representation of the directory fabric -- ``full-bit-vector`` /
   ``limited-pointer`` / ``coarse-vector`` -- or ``null`` on
   non-directory topologies).  ``TopologyConfig`` serializations gain
   ``directory_entry`` / ``directory_pointers`` /
   ``directory_region_size``; older payloads without them load with the
   full-bit-vector defaults.  ``BENCH_engine.json``'s ``topology``
   section gains ``representations`` (per-representation msgs/txn and
   directory bits/block at each processor scale, the input to
   ``perf_guard``'s limited-pointer traffic ceiling).  Migration: v6
   readers that ignore unknown keys keep working; none of the
   pre-existing keys changed meaning.
"""

from __future__ import annotations

from repro.common.errors import ReproError

#: Current version of all exported JSON payload shapes.
SCHEMA_VERSION = 7

#: Key under which the version is stamped.
SCHEMA_KEY = "schema_version"


class SchemaError(ReproError):
    """A JSON payload is missing or carries an unusable schema version."""


def stamp(payload: dict) -> dict:
    """Stamp ``payload`` (in place) with the current schema version."""
    payload[SCHEMA_KEY] = SCHEMA_VERSION
    return payload


def check(payload: dict, *, where: str = "payload") -> int:
    """Validate ``payload``'s schema version; returns the version found.

    Raises :class:`SchemaError` when the key is missing, non-integer, or
    newer than this library understands.  Older (smaller) versions are
    accepted -- readers stay backwards compatible.
    """
    if not isinstance(payload, dict):
        raise SchemaError(f"{where}: expected a JSON object, got "
                          f"{type(payload).__name__}")
    version = payload.get(SCHEMA_KEY)
    if version is None:
        raise SchemaError(f"{where}: missing {SCHEMA_KEY!r} "
                          f"(expected {SCHEMA_VERSION})")
    if not isinstance(version, int) or isinstance(version, bool):
        raise SchemaError(f"{where}: {SCHEMA_KEY!r} must be an integer, "
                          f"got {version!r}")
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"{where}: {SCHEMA_KEY} {version} is newer than this library "
            f"understands (max {SCHEMA_VERSION}); upgrade the tooling"
        )
    return version
