"""Shared value types, configuration, and errors."""

from repro.common.config import (
    CacheConfig,
    DirectoryKind,
    RmwMethod,
    SystemConfig,
    TimingConfig,
    WaitMode,
)
from repro.common.errors import (
    CoherenceViolation,
    ConfigError,
    DeadlockError,
    ProgramError,
    ProtocolError,
    ReproError,
    SerializationViolation,
    UnknownProtocolError,
)
from repro.common.types import (
    AddressRange,
    BlockAddr,
    CacheId,
    Cycle,
    ProcessorId,
    Stamp,
    WordAddr,
    block_of,
    word_offset,
)

__all__ = [
    "AddressRange",
    "BlockAddr",
    "CacheConfig",
    "CacheId",
    "CoherenceViolation",
    "ConfigError",
    "Cycle",
    "DeadlockError",
    "DirectoryKind",
    "ProcessorId",
    "ProgramError",
    "ProtocolError",
    "ReproError",
    "RmwMethod",
    "SerializationViolation",
    "Stamp",
    "SystemConfig",
    "TimingConfig",
    "UnknownProtocolError",
    "WaitMode",
    "WordAddr",
    "block_of",
    "word_offset",
]
