"""Configuration objects for the simulated system.

Timing defaults are modeling choices, not paper numbers (the paper reports
none); they are chosen so that the *relative* costs the paper argues about
are represented: a one-cycle invalidation / unlock broadcast (Feature 4 and
Section E.4), cache-to-cache transfer faster than a memory fetch
(Papamarcos & Patel's motivation, Section F.2), and a per-word bus
occupancy so that block size matters (Sections D.3, F.4).
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field, fields

from repro.common.errors import ConfigError


def _config_to_dict(obj) -> dict:
    """Flatten a config dataclass; enums by value, nested configs recurse."""
    out: dict = {}
    for spec in fields(obj):
        value = getattr(obj, spec.name)
        if isinstance(value, enum.Enum):
            value = value.value
        elif hasattr(value, "to_dict"):
            value = value.to_dict()
        out[spec.name] = value
    return out


def _config_from_dict(cls, data: dict, *, where: str):
    """Rebuild ``cls`` from :func:`_config_to_dict` output, naming the
    offending field in every error."""
    if not isinstance(data, dict):
        raise ConfigError(f"{where}: expected a mapping, got "
                          f"{type(data).__name__}")
    specs = {spec.name: spec for spec in fields(cls)}
    unknown = sorted(set(data) - set(specs))
    if unknown:
        raise ConfigError(f"{where}: unknown field(s) {', '.join(unknown)}")
    kwargs: dict = {}
    for name, value in data.items():
        kind = specs[name].type
        try:
            if name in _NESTED_CONFIG_FIELDS:
                value = _NESTED_CONFIG_FIELDS[name].from_dict(value)
            elif isinstance(kind, str) and kind in _ENUM_FIELD_TYPES:
                value = _ENUM_FIELD_TYPES[kind](value)
        except ConfigError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigError(f"{where}.{name}: invalid value "
                              f"{value!r} ({exc})") from None
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except ConfigError as exc:
        raise ConfigError(f"{where}: {exc}") from None
    except TypeError as exc:
        raise ConfigError(f"{where}: {exc}") from None


class DirectoryKind(enum.Enum):
    """Feature 3 of Table 1: how the cache directory is organized.

    * ``IDENTICAL_DUAL`` -- two identical copies, one for the processor and
      one for the bus; processor status writes (dirty updates) interfere
      with bus snoops.
    * ``NON_IDENTICAL_DUAL`` -- clean/dirty status lives only in the
      processor directory (and waiter status only in the bus directory),
      eliminating the interference.
    * ``DUAL_PORTED_READ`` -- a single directory with dual-ported reads
      (Katz et al.); writes still interfere.
    """

    IDENTICAL_DUAL = "ID"
    NON_IDENTICAL_DUAL = "NID"
    DUAL_PORTED_READ = "DPR"


class RmwMethod(enum.Enum):
    """Feature 6 of Table 1: the four atomic read-modify-write methods."""

    MEMORY_HOLD = "memory-hold"  # hold the memory unit throughout (Rudolph/Segall)
    CACHE_HOLD = "cache-hold"  # fetch exclusive, hold the cache (Frank)
    BUS_HOLD = "bus-hold"  # P&P variant: hold the bus through to the write
    OPTIMISTIC = "optimistic"  # fetch at the write; abort on steal
    LOCK_STATE = "lock-state"  # use the cache lock state (the proposal)


class WaitMode(enum.Enum):
    """How a processor behaves while busy-waiting for a lock (Section E.4)."""

    SPIN = "spin"  # idle (or loop in cache) until the lock is free
    WORK = "work"  # execute a ready section while waiting


@dataclass(frozen=True)
class TimingConfig:
    """Bus/memory/cache latencies, in bus cycles."""

    cache_hit_cycles: int = 1
    #: Cycles for the address/arbitration phase of any bus transaction.
    bus_address_cycles: int = 1
    #: Additional cycles per word moved over the bus.
    word_transfer_cycles: int = 1
    #: Memory access latency before the first word is available.
    memory_latency: int = 6
    #: Cache lookup latency before a cache-to-cache transfer starts.
    cache_supply_latency: int = 1
    #: Extra cycles when multiple read sources must arbitrate (Illinois,
    #: Feature 8 ``ARB``).
    source_arbitration_cycles: int = 2
    #: Extra bus cycles to carry clean/dirty status with a block when the
    #: protocol transfers it (Feature 7 ``S``); 0 models a spare bus line.
    status_transfer_cycles: int = 0
    #: True if a flush-on-transfer proceeds concurrently with the
    #: cache-to-cache transfer (Feature 7 discussion); if False the flush
    #: costs an extra memory write on the bus.
    flush_concurrent: bool = True
    #: One-cycle invalidation / unlock broadcast (Feature 4, Section E.4).
    invalidate_cycles: int = 1
    #: Modify-phase cycles an atomic RMW holds the bus under the bus-hold
    #: method (Feature 6, Papamarcos & Patel variant).
    rmw_modify_cycles: int = 2

    def __post_init__(self) -> None:
        for name in (
            "cache_hit_cycles",
            "bus_address_cycles",
            "word_transfer_cycles",
            "memory_latency",
            "cache_supply_latency",
            "source_arbitration_cycles",
            "status_transfer_cycles",
            "invalidate_cycles",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")

    def memory_block_cycles(self, words_per_block: int) -> int:
        """Bus occupancy of a block fetch serviced by main memory."""
        return (
            self.bus_address_cycles
            + self.memory_latency
            + self.word_transfer_cycles * words_per_block
        )

    def cache_block_cycles(self, words_per_block: int, *, arbitrate: bool = False) -> int:
        """Bus occupancy of a cache-to-cache block transfer."""
        cycles = (
            self.bus_address_cycles
            + self.cache_supply_latency
            + self.word_transfer_cycles * words_per_block
            + self.status_transfer_cycles
        )
        if arbitrate:
            cycles += self.source_arbitration_cycles
        return cycles

    def word_write_cycles(self) -> int:
        """Bus occupancy of a write-through / update of a single word."""
        return self.bus_address_cycles + self.word_transfer_cycles

    def flush_cycles(self, words_per_block: int) -> int:
        """Bus occupancy of a block flush (write-back) to memory."""
        return (
            self.bus_address_cycles
            + self.memory_latency
            + self.word_transfer_cycles * words_per_block
        )

    def to_dict(self) -> dict:
        return _config_to_dict(self)

    @staticmethod
    def from_dict(data: dict) -> "TimingConfig":
        return _config_from_dict(TimingConfig, data, where="timing")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one processor cache."""

    words_per_block: int = 4
    #: Number of block frames in the cache.
    num_blocks: int = 64
    #: Associativity; ``None`` means fully associative (the paper's default
    #: assumption in Section E.3).
    assoc: int | None = None
    #: Transfer-unit size in words (Section D.3); ``None`` means whole-block
    #: transfers.
    transfer_unit_words: int | None = None
    directory: DirectoryKind = DirectoryKind.IDENTICAL_DUAL

    def __post_init__(self) -> None:
        if self.words_per_block <= 0:
            raise ConfigError("words_per_block must be positive")
        if self.num_blocks <= 0:
            raise ConfigError("num_blocks must be positive")
        if self.assoc is not None:
            if self.assoc <= 0:
                raise ConfigError("assoc must be positive or None")
            if self.num_blocks % self.assoc != 0:
                raise ConfigError(
                    f"num_blocks ({self.num_blocks}) must be divisible by "
                    f"assoc ({self.assoc})"
                )
        if self.transfer_unit_words is not None:
            if self.transfer_unit_words <= 0:
                raise ConfigError("transfer_unit_words must be positive or None")
            if self.words_per_block % self.transfer_unit_words != 0:
                raise ConfigError(
                    "words_per_block must be a multiple of transfer_unit_words"
                )

    @property
    def fully_associative(self) -> bool:
        return self.assoc is None

    @property
    def num_sets(self) -> int:
        if self.assoc is None:
            return 1
        return self.num_blocks // self.assoc

    @property
    def ways(self) -> int:
        return self.num_blocks if self.assoc is None else self.assoc

    def to_dict(self) -> dict:
        return _config_to_dict(self)

    @staticmethod
    def from_dict(data: dict) -> "CacheConfig":
        return _config_from_dict(CacheConfig, data, where="cache")


#: Interconnect fabric kinds a :class:`TopologyConfig` can name.
TOPOLOGY_KINDS: tuple[str, ...] = ("snoop", "multibus", "clustered",
                                  "directory")


@dataclass(frozen=True)
class TopologyConfig:
    """Interconnect geometry: which coherence fabric joins the caches.

    * ``snoop`` -- the paper's single broadcast bus (Section A.2).
    * ``multibus`` -- ``buses`` independent broadcast buses over
      block-interleaved address partitions (the dual-bus variant,
      generalized).
    * ``clustered`` -- ``clusters`` clusters of ``buses_per_cluster``
      snooping buses joined by an inter-cluster link; cluster-level
      coherence filtering keeps snoops out of clusters that never
      touched a block, and remote-home transactions pay
      ``inter_cluster_hop_cycles`` on the link.
    * ``directory`` -- a directory backend: ``directory_banks`` home
      banks hold per-block owner/sharer vectors and turn broadcasts
      into point-to-point forward/invalidate/ack messages; every
      transaction serializes at its home bank and pays
      ``directory_lookup_cycles`` plus hop latencies.
    """

    kind: str = "snoop"
    #: Independent broadcast buses (``multibus`` only).
    buses: int = 1
    #: Snooping clusters (``clustered``).
    clusters: int = 1
    #: Buses inside each cluster (``clustered``).
    buses_per_cluster: int = 1
    #: Home banks of the directory (``directory``).
    directory_banks: int = 1
    #: One-way latency of the inter-cluster link / point-to-point
    #: network, in bus cycles.
    inter_cluster_hop_cycles: int = 2
    #: Home-bank directory lookup latency, in bus cycles.
    directory_lookup_cycles: int = 2
    #: Sharer-set representation of directory entries (``directory``
    #: only): ``full-bit-vector`` (exact, one bit per cache),
    #: ``limited-pointer`` (Dir-n-B, broadcast on overflow), or
    #: ``coarse-vector`` (one bit per region of caches).
    directory_entry: str = "full-bit-vector"
    #: Exact cache pointers per entry (``limited-pointer`` only).
    directory_pointers: int = 2
    #: Caches per presence bit (``coarse-vector`` only).
    directory_region_size: int = 4

    def __post_init__(self) -> None:
        from repro.directory_backend.representations import (
            DIRECTORY_ENTRY_KINDS,
        )

        if self.kind not in TOPOLOGY_KINDS:
            raise ConfigError(
                f"unknown topology kind {self.kind!r}; expected one of "
                f"{', '.join(TOPOLOGY_KINDS)}"
            )
        for name in ("buses", "clusters", "buses_per_cluster",
                     "directory_banks", "directory_pointers",
                     "directory_region_size"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, "
                                  f"got {getattr(self, name)}")
        for name in ("inter_cluster_hop_cycles", "directory_lookup_cycles"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative, "
                                  f"got {getattr(self, name)}")
        if self.directory_entry not in DIRECTORY_ENTRY_KINDS:
            raise ConfigError(
                f"unknown directory entry kind {self.directory_entry!r}; "
                f"expected one of {', '.join(DIRECTORY_ENTRY_KINDS)}"
            )
        if self.kind == "snoop" and self.buses != 1:
            raise ConfigError("a snoop topology has exactly one bus; "
                              "use kind='multibus' for more")

    @property
    def num_buses(self) -> int:
        """Serialization domains of the fabric (what legacy readers of
        ``SystemConfig.num_buses`` see)."""
        if self.kind == "multibus":
            return self.buses
        if self.kind == "clustered":
            return self.clusters * self.buses_per_cluster
        if self.kind == "directory":
            return self.directory_banks
        return 1

    def to_dict(self) -> dict:
        return _config_to_dict(self)

    @staticmethod
    def from_dict(data: dict) -> "TopologyConfig":
        return _config_from_dict(TopologyConfig, data, where="topology")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of a simulated system."""

    num_processors: int = 4
    protocol: str = "bitar-despain"
    #: Deprecated alias for ``topology``: ``num_buses=k`` maps to a
    #: ``snoop`` (k == 1) or ``multibus`` (k > 1) TopologyConfig with a
    #: DeprecationWarning.  After construction the attribute always
    #: reads as the effective bus/bank count of the topology, so legacy
    #: readers keep working.
    num_buses: int | None = None
    #: The interconnect fabric (default: the single snooping bus).
    topology: TopologyConfig | None = None
    cache: CacheConfig = field(default_factory=CacheConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    rmw_method: RmwMethod = RmwMethod.LOCK_STATE
    wait_mode: WaitMode = WaitMode.SPIN
    #: Include an I/O processor port on the bus.
    with_io: bool = False
    #: Raise :class:`~repro.common.errors.CoherenceViolation` immediately on
    #: an invariant failure instead of counting it (the classic write-through
    #: scheme legitimately produces stale reads -- Section F.1 -- so its
    #: benches run with ``strict_verify=False``).
    strict_verify: bool = True
    #: Cycles without any progress before declaring deadlock.
    deadlock_horizon: int = 100_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_processors <= 0:
            raise ConfigError("num_processors must be positive")
        if self.deadlock_horizon <= 0:
            raise ConfigError("deadlock_horizon must be positive")
        topology = self.topology
        if self.num_buses is not None:
            if self.num_buses <= 0:
                raise ConfigError("num_buses must be positive")
            warnings.warn(
                "SystemConfig.num_buses is deprecated; pass "
                "topology=TopologyConfig(kind='multibus', buses=k) instead",
                DeprecationWarning, stacklevel=3,
            )
            if topology is None:
                topology = (TopologyConfig() if self.num_buses == 1 else
                            TopologyConfig(kind="multibus",
                                           buses=self.num_buses))
            elif topology.num_buses != self.num_buses:
                raise ConfigError(
                    f"num_buses ({self.num_buses}) conflicts with the "
                    f"topology ({topology.kind}, {topology.num_buses} "
                    f"buses); drop the deprecated num_buses"
                )
        if topology is None:
            topology = TopologyConfig()
        # Normalize: topology is always set, and the deprecated alias
        # always reads as the effective bus count for legacy readers.
        object.__setattr__(self, "topology", topology)
        object.__setattr__(self, "num_buses", topology.num_buses)

    def to_dict(self) -> dict:
        """Serialize to plain data (enums by value, nested configs as
        dicts); :meth:`from_dict` round-trips the result exactly.  The
        deprecated ``num_buses`` alias is omitted (it is implied by
        ``topology``); legacy payloads carrying it still load."""
        out = _config_to_dict(self)
        del out["num_buses"]
        return out

    @staticmethod
    def from_dict(data: dict) -> "SystemConfig":
        """Rebuild from :meth:`to_dict` output.  Unknown keys, bad enum
        values, and constraint violations raise :class:`ConfigError`
        naming the offending field (``system.cache.assoc``-style)."""
        return _config_from_dict(SystemConfig, data, where="system")


#: Fields of any config dataclass holding a nested config, and the enum
#: types referenced by (string) field annotations -- both consumed by
#: :func:`_config_from_dict` when rebuilding values.
_NESTED_CONFIG_FIELDS = {"cache": CacheConfig, "timing": TimingConfig,
                         "topology": TopologyConfig}
_ENUM_FIELD_TYPES = {
    "DirectoryKind": DirectoryKind,
    "RmwMethod": RmwMethod,
    "WaitMode": WaitMode,
}
