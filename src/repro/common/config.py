"""Configuration objects for the simulated system.

Timing defaults are modeling choices, not paper numbers (the paper reports
none); they are chosen so that the *relative* costs the paper argues about
are represented: a one-cycle invalidation / unlock broadcast (Feature 4 and
Section E.4), cache-to-cache transfer faster than a memory fetch
(Papamarcos & Patel's motivation, Section F.2), and a per-word bus
occupancy so that block size matters (Sections D.3, F.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields

from repro.common.errors import ConfigError


def _config_to_dict(obj) -> dict:
    """Flatten a config dataclass; enums by value, nested configs recurse."""
    out: dict = {}
    for spec in fields(obj):
        value = getattr(obj, spec.name)
        if isinstance(value, enum.Enum):
            value = value.value
        elif hasattr(value, "to_dict"):
            value = value.to_dict()
        out[spec.name] = value
    return out


def _config_from_dict(cls, data: dict, *, where: str):
    """Rebuild ``cls`` from :func:`_config_to_dict` output, naming the
    offending field in every error."""
    if not isinstance(data, dict):
        raise ConfigError(f"{where}: expected a mapping, got "
                          f"{type(data).__name__}")
    specs = {spec.name: spec for spec in fields(cls)}
    unknown = sorted(set(data) - set(specs))
    if unknown:
        raise ConfigError(f"{where}: unknown field(s) {', '.join(unknown)}")
    kwargs: dict = {}
    for name, value in data.items():
        kind = specs[name].type
        try:
            if name in _NESTED_CONFIG_FIELDS:
                value = _NESTED_CONFIG_FIELDS[name].from_dict(value)
            elif isinstance(kind, str) and kind in _ENUM_FIELD_TYPES:
                value = _ENUM_FIELD_TYPES[kind](value)
        except ConfigError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigError(f"{where}.{name}: invalid value "
                              f"{value!r} ({exc})") from None
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except ConfigError as exc:
        raise ConfigError(f"{where}: {exc}") from None
    except TypeError as exc:
        raise ConfigError(f"{where}: {exc}") from None


class DirectoryKind(enum.Enum):
    """Feature 3 of Table 1: how the cache directory is organized.

    * ``IDENTICAL_DUAL`` -- two identical copies, one for the processor and
      one for the bus; processor status writes (dirty updates) interfere
      with bus snoops.
    * ``NON_IDENTICAL_DUAL`` -- clean/dirty status lives only in the
      processor directory (and waiter status only in the bus directory),
      eliminating the interference.
    * ``DUAL_PORTED_READ`` -- a single directory with dual-ported reads
      (Katz et al.); writes still interfere.
    """

    IDENTICAL_DUAL = "ID"
    NON_IDENTICAL_DUAL = "NID"
    DUAL_PORTED_READ = "DPR"


class RmwMethod(enum.Enum):
    """Feature 6 of Table 1: the four atomic read-modify-write methods."""

    MEMORY_HOLD = "memory-hold"  # hold the memory unit throughout (Rudolph/Segall)
    CACHE_HOLD = "cache-hold"  # fetch exclusive, hold the cache (Frank)
    BUS_HOLD = "bus-hold"  # P&P variant: hold the bus through to the write
    OPTIMISTIC = "optimistic"  # fetch at the write; abort on steal
    LOCK_STATE = "lock-state"  # use the cache lock state (the proposal)


class WaitMode(enum.Enum):
    """How a processor behaves while busy-waiting for a lock (Section E.4)."""

    SPIN = "spin"  # idle (or loop in cache) until the lock is free
    WORK = "work"  # execute a ready section while waiting


@dataclass(frozen=True)
class TimingConfig:
    """Bus/memory/cache latencies, in bus cycles."""

    cache_hit_cycles: int = 1
    #: Cycles for the address/arbitration phase of any bus transaction.
    bus_address_cycles: int = 1
    #: Additional cycles per word moved over the bus.
    word_transfer_cycles: int = 1
    #: Memory access latency before the first word is available.
    memory_latency: int = 6
    #: Cache lookup latency before a cache-to-cache transfer starts.
    cache_supply_latency: int = 1
    #: Extra cycles when multiple read sources must arbitrate (Illinois,
    #: Feature 8 ``ARB``).
    source_arbitration_cycles: int = 2
    #: Extra bus cycles to carry clean/dirty status with a block when the
    #: protocol transfers it (Feature 7 ``S``); 0 models a spare bus line.
    status_transfer_cycles: int = 0
    #: True if a flush-on-transfer proceeds concurrently with the
    #: cache-to-cache transfer (Feature 7 discussion); if False the flush
    #: costs an extra memory write on the bus.
    flush_concurrent: bool = True
    #: One-cycle invalidation / unlock broadcast (Feature 4, Section E.4).
    invalidate_cycles: int = 1
    #: Modify-phase cycles an atomic RMW holds the bus under the bus-hold
    #: method (Feature 6, Papamarcos & Patel variant).
    rmw_modify_cycles: int = 2

    def __post_init__(self) -> None:
        for name in (
            "cache_hit_cycles",
            "bus_address_cycles",
            "word_transfer_cycles",
            "memory_latency",
            "cache_supply_latency",
            "source_arbitration_cycles",
            "status_transfer_cycles",
            "invalidate_cycles",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")

    def memory_block_cycles(self, words_per_block: int) -> int:
        """Bus occupancy of a block fetch serviced by main memory."""
        return (
            self.bus_address_cycles
            + self.memory_latency
            + self.word_transfer_cycles * words_per_block
        )

    def cache_block_cycles(self, words_per_block: int, *, arbitrate: bool = False) -> int:
        """Bus occupancy of a cache-to-cache block transfer."""
        cycles = (
            self.bus_address_cycles
            + self.cache_supply_latency
            + self.word_transfer_cycles * words_per_block
            + self.status_transfer_cycles
        )
        if arbitrate:
            cycles += self.source_arbitration_cycles
        return cycles

    def word_write_cycles(self) -> int:
        """Bus occupancy of a write-through / update of a single word."""
        return self.bus_address_cycles + self.word_transfer_cycles

    def flush_cycles(self, words_per_block: int) -> int:
        """Bus occupancy of a block flush (write-back) to memory."""
        return (
            self.bus_address_cycles
            + self.memory_latency
            + self.word_transfer_cycles * words_per_block
        )

    def to_dict(self) -> dict:
        return _config_to_dict(self)

    @staticmethod
    def from_dict(data: dict) -> "TimingConfig":
        return _config_from_dict(TimingConfig, data, where="timing")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one processor cache."""

    words_per_block: int = 4
    #: Number of block frames in the cache.
    num_blocks: int = 64
    #: Associativity; ``None`` means fully associative (the paper's default
    #: assumption in Section E.3).
    assoc: int | None = None
    #: Transfer-unit size in words (Section D.3); ``None`` means whole-block
    #: transfers.
    transfer_unit_words: int | None = None
    directory: DirectoryKind = DirectoryKind.IDENTICAL_DUAL

    def __post_init__(self) -> None:
        if self.words_per_block <= 0:
            raise ConfigError("words_per_block must be positive")
        if self.num_blocks <= 0:
            raise ConfigError("num_blocks must be positive")
        if self.assoc is not None:
            if self.assoc <= 0:
                raise ConfigError("assoc must be positive or None")
            if self.num_blocks % self.assoc != 0:
                raise ConfigError(
                    f"num_blocks ({self.num_blocks}) must be divisible by "
                    f"assoc ({self.assoc})"
                )
        if self.transfer_unit_words is not None:
            if self.transfer_unit_words <= 0:
                raise ConfigError("transfer_unit_words must be positive or None")
            if self.words_per_block % self.transfer_unit_words != 0:
                raise ConfigError(
                    "words_per_block must be a multiple of transfer_unit_words"
                )

    @property
    def fully_associative(self) -> bool:
        return self.assoc is None

    @property
    def num_sets(self) -> int:
        if self.assoc is None:
            return 1
        return self.num_blocks // self.assoc

    @property
    def ways(self) -> int:
        return self.num_blocks if self.assoc is None else self.assoc

    def to_dict(self) -> dict:
        return _config_to_dict(self)

    @staticmethod
    def from_dict(data: dict) -> "CacheConfig":
        return _config_from_dict(CacheConfig, data, where="cache")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of a simulated system."""

    num_processors: int = 4
    protocol: str = "bitar-despain"
    #: Broadcast buses (Section A.2: "single or dual bus systems").
    #: Blocks are interleaved across buses by block number.
    num_buses: int = 1
    cache: CacheConfig = field(default_factory=CacheConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    rmw_method: RmwMethod = RmwMethod.LOCK_STATE
    wait_mode: WaitMode = WaitMode.SPIN
    #: Include an I/O processor port on the bus.
    with_io: bool = False
    #: Raise :class:`~repro.common.errors.CoherenceViolation` immediately on
    #: an invariant failure instead of counting it (the classic write-through
    #: scheme legitimately produces stale reads -- Section F.1 -- so its
    #: benches run with ``strict_verify=False``).
    strict_verify: bool = True
    #: Cycles without any progress before declaring deadlock.
    deadlock_horizon: int = 100_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_processors <= 0:
            raise ConfigError("num_processors must be positive")
        if self.num_buses <= 0:
            raise ConfigError("num_buses must be positive")
        if self.deadlock_horizon <= 0:
            raise ConfigError("deadlock_horizon must be positive")

    def to_dict(self) -> dict:
        """Serialize to plain data (enums by value, nested configs as
        dicts); :meth:`from_dict` round-trips the result exactly."""
        return _config_to_dict(self)

    @staticmethod
    def from_dict(data: dict) -> "SystemConfig":
        """Rebuild from :meth:`to_dict` output.  Unknown keys, bad enum
        values, and constraint violations raise :class:`ConfigError`
        naming the offending field (``system.cache.assoc``-style)."""
        return _config_from_dict(SystemConfig, data, where="system")


#: Fields of any config dataclass holding a nested config, and the enum
#: types referenced by (string) field annotations -- both consumed by
#: :func:`_config_from_dict` when rebuilding values.
_NESTED_CONFIG_FIELDS = {"cache": CacheConfig, "timing": TimingConfig}
_ENUM_FIELD_TYPES = {
    "DirectoryKind": DirectoryKind,
    "RmwMethod": RmwMethod,
    "WaitMode": WaitMode,
}
