"""Address-space layout: block-aligned allocation and atoms.

Placement follows the paper's Section D.2 rule for write-in systems:
*blocks are devoted to atoms* -- each lock-protected atom starts at a
block boundary and no unrelated data shares its blocks, so that when a
process locks an atom no other process contends for its blocks.

(Lives under ``common`` because both the synchronization library and the
workload generators build on it.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.types import BlockAddr, WordAddr


@dataclass
class Layout:
    """Sequential allocator of block-aligned regions."""

    words_per_block: int
    _next_block: int = 0

    def block(self) -> BlockAddr:
        """Allocate one block; returns its base word address."""
        addr = self._next_block * self.words_per_block
        self._next_block += 1
        return addr

    def blocks(self, n: int) -> list[BlockAddr]:
        return [self.block() for _ in range(n)]

    def region(self, n_words: int) -> list[WordAddr]:
        """Allocate ``n_words`` words spanning whole blocks."""
        n_blocks = -(-n_words // self.words_per_block)
        base = self.block()
        for _ in range(n_blocks - 1):
            self.block()
        return [base + i for i in range(n_words)]


@dataclass
class Atom:
    """A lock-protected shared object: a lock word plus data words.

    The lock word is the first word of the atom's first block, matching
    Section E.3 ("the first read and last write of the atom will probably
    be to the first block").
    """

    base: WordAddr
    n_words: int

    @property
    def lock_word(self) -> WordAddr:
        return self.base

    def data_words(self) -> list[WordAddr]:
        return [self.base + 1 + i for i in range(self.n_words - 1)]

    @staticmethod
    def allocate(layout: Layout, n_words: int) -> "Atom":
        if n_words < 1:
            raise ValueError("an atom needs at least its lock word")
        words = layout.region(n_words)
        return Atom(base=words[0], n_words=n_words)


def layout_for(config: SystemConfig) -> Layout:
    return Layout(words_per_block=config.cache.words_per_block)
