"""Protocol lint runners and the machine-readable lint report."""

from __future__ import annotations

from repro.common import schema
from repro.lint.rules import Finding, lint_table
from repro.protocols import PROTOCOLS, get_protocol
from repro.protocols.table import TableProtocol


def lint_protocol(name: str) -> list[Finding]:
    """Lint one registered protocol's transition table."""
    cls = get_protocol(name)
    if not (isinstance(cls, type) and issubclass(cls, TableProtocol)):
        return [Finding(
            check="structure", protocol=name,
            detail="protocol is not table-driven; nothing to lint",
        )]
    return lint_table(cls.table)


def lint_all() -> dict[str, list[Finding]]:
    """Lint every registered protocol plus the directory home-bank
    policy, keyed by registry name."""
    from repro.directory_backend.table import HOME_BANK_TABLE

    findings = {name: lint_protocol(name) for name in sorted(PROTOCOLS)}
    findings[HOME_BANK_TABLE.name] = lint_table(HOME_BANK_TABLE)
    return findings


def build_report(findings_by_protocol: dict[str, list[Finding]]) -> dict:
    """Schema-stamped JSON payload for ``repro lint --json``."""
    protocols = {}
    for name in sorted(findings_by_protocol):
        findings = findings_by_protocol[name]
        entry: dict = {"ok": not findings,
                       "findings": [f.to_dict() for f in findings]}
        cls = PROTOCOLS.get(name)
        table = None
        if isinstance(cls, type) and issubclass(cls, TableProtocol):
            table = cls.table
        elif cls is None:
            from repro.directory_backend.table import HOME_BANK_TABLE

            if name == HOME_BANK_TABLE.name:
                table = HOME_BANK_TABLE
        if table is not None:
            entry["rules"] = len(table.rules)
            entry["states"] = sorted(
                s.value for s in table.states_mentioned())
        protocols[name] = entry
    payload = {
        "kind": "lint-report",
        "ok": all(entry["ok"] for entry in protocols.values()),
        "protocols": protocols,
    }
    return schema.stamp(payload)
