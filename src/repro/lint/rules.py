"""Static checks over protocol transition tables.

Five rule families, mirroring what the paper lets a reader check by
staring at a protocol's state diagram:

* **determinism** -- guards are well-formed (known atoms, one atom per
  family, families legal for the event class, actions drawn from the
  catalog) and no two rows of a bucket match the same context without a
  unique most-specific winner.
* **completeness** -- for every bus operation the protocol can issue,
  every reachable state has a row for the corresponding snoop / fill /
  completion event, under *every* guard combination; processor events
  are covered at every reachable state.
* **reachability** -- no unreachable states or dead rows.
* **write-serialization** -- Section C's invariants: a snooped foreign
  access never leaves a second writable copy, exclusive-seeking events
  end in invalidation (or a lock refusal), dirty data is never dropped
  silently, and a shared read fill never lands write privilege.
* **lock-state** -- lock states are entered only through lock
  instructions, lock fills, refusals or spilled-lock recovery, and a
  protocol that records waiters must wake them on unlock.

Update-style snoop events (``sn-update-word``) are exempt from the
write-serialization rules: write-update protocols deliberately keep
every copy valid and current.  Whether a *locked* holder refuses a
foreign fetch is a liveness property, left to the model checker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

from repro.cache.state import CacheState
from repro.protocols.table import (
    ATOM_FAMILY,
    BUS_REQUESTS,
    DONE_EVENT,
    FILL_EVENT,
    FILL_EVENTS,
    GUARD_FAMILIES,
    PROCESSOR_EVENTS,
    SNOOP_EVENT,
    SNOOP_EVENTS,
    Event,
    Rule,
    TransitionTable,
    action_kind,
    guard_families_for,
    known_actions_for,
)

#: Snoop events subject to the write-serialization rules (update-style
#: events deliberately keep copies valid).
INVALIDATING_SNOOP_EVENTS = frozenset({
    Event.SN_READ, Event.SN_EXCL, Event.SN_UPGRADE, Event.SN_WRITE_WORD,
    Event.SN_WRITE_NO_FETCH,
})

#: Events that seek exclusive access: after they are snooped, at most
#: the requester may hold the block.
EXCLUSIVE_SEEKING_EVENTS = frozenset({
    Event.SN_EXCL, Event.SN_UPGRADE, Event.SN_WRITE_NO_FETCH,
})

_LOCKED = frozenset({CacheState.LOCK, CacheState.LOCK_WAITER})

#: Actions that hand dirty data somewhere safe when snooped.
_DIRTY_SAFE_ACTIONS = frozenset({
    "supply", "supply-clean", "flush", "flush-clean", "refuse-lock",
})

#: The cache-side rule families.
CACHE_CHECKS = ("determinism", "completeness", "reachability",
                "write-serialization", "lock-state")

#: The directory home-bank rule families (tables with
#: ``table_kind == "directory"``).
DIRECTORY_CHECKS = ("directory-completeness", "directory-sharer-drop",
                    "directory-overflow-policy")

CHECKS = CACHE_CHECKS + DIRECTORY_CHECKS


@dataclass(frozen=True)
class Finding:
    """One linter complaint about one table."""

    check: str
    protocol: str
    detail: str
    state: str | None = None
    event: str | None = None

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "protocol": self.protocol,
            "state": self.state,
            "event": self.event,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        where = "/".join(p for p in (self.state, self.event) if p)
        prefix = f"[{self.check}] {self.protocol}"
        return f"{prefix} {where}: {self.detail}" if where else \
            f"{prefix}: {self.detail}"


def lint_table(table: TransitionTable) -> list[Finding]:
    """Run every rule family over one table.

    Dispatches on the table's vocabulary: directory home-bank tables
    (``table_kind == "directory"``) get the directory rule families,
    everything else the five cache-side families."""
    if getattr(table, "table_kind", "cache") == "directory":
        return lint_directory_table(table)
    findings: list[Finding] = []
    findings.extend(_check_determinism(table))
    findings.extend(_check_completeness(table))
    findings.extend(_check_reachability(table))
    findings.extend(_check_write_serialization(table))
    findings.extend(_check_lock_sanity(table))
    return findings


# -- shared helpers ---------------------------------------------------------


def _buckets(table: TransitionTable) -> dict[tuple[CacheState, Event],
                                             list[Rule]]:
    buckets: dict[tuple[CacheState, Event], list[Rule]] = {}
    for r in table.rules:
        buckets.setdefault((r.state, r.event), []).append(r)
    return buckets


def _combos(rules: Iterable[Rule]) -> tuple[tuple[str, ...],
                                            list[frozenset[str]]]:
    """All full contexts over the guard families the bucket mentions."""
    families = sorted({ATOM_FAMILY[a] for r in rules for a in r.guard
                       if a in ATOM_FAMILY})
    atom_choices = [GUARD_FAMILIES[f] for f in families]
    return tuple(families), [frozenset(c)
                             for c in itertools.product(*atom_choices)]


def _coverage_gaps(table: TransitionTable, state: CacheState,
                   event: Event) -> tuple[list[frozenset[str]],
                                          list[frozenset[str]]]:
    """(unmatched contexts, ambiguous contexts) for one bucket."""
    rules = table.rules_for(state, event)
    _, combos = _combos(rules)
    missing, ambiguous = [], []
    for ctx in combos:
        matches = [r for r in rules if r.matches(ctx)]
        if not matches:
            missing.append(ctx)
            continue
        best = max(len(r.guard) for r in matches)
        if sum(1 for r in matches if len(r.guard) == best) > 1:
            ambiguous.append(ctx)
    return missing, ambiguous


def _fmt_ctx(ctx: frozenset[str]) -> str:
    return "{" + ",".join(sorted(ctx)) + "}" if ctx else "{}"


def _finding(check: str, table: TransitionTable, detail: str,
             state: CacheState | None = None,
             event: Event | None = None) -> Finding:
    return Finding(check=check, protocol=table.name, detail=detail,
                   state=state.value if state is not None else None,
                   event=event.value if event is not None else None)


def _coverable_states(table: TransitionTable) -> list[CacheState]:
    """Reachable, non-transient states (the ones rows must cover)."""
    return [s for s in sorted(table.reachable_states(), key=lambda s: s.value)
            if s not in table.transient_states]


# -- determinism ------------------------------------------------------------


def _check_determinism(table: TransitionTable) -> list[Finding]:
    findings = []
    for r in table.rules:
        findings.extend(_check_rule_shape(table, r))
    for (state, event), _rules in sorted(
            _buckets(table).items(),
            key=lambda item: (item[0][0].value, item[0][1].value)):
        _missing, ambiguous = _coverage_gaps(table, state, event)
        for ctx in ambiguous:
            findings.append(_finding(
                "determinism", table,
                f"two equally-specific rows match {_fmt_ctx(ctx)}",
                state, event))
    return findings


def _check_rule_shape(table: TransitionTable, r: Rule) -> list[Finding]:
    findings = []
    allowed_families = guard_families_for(r.event)
    seen_families: set[str] = set()
    for atom in sorted(r.guard):
        family = ATOM_FAMILY.get(atom)
        if family is None:
            findings.append(_finding(
                "determinism", table, f"unknown guard atom {atom!r}",
                r.state, r.event))
            continue
        if family in seen_families:
            findings.append(_finding(
                "determinism", table,
                f"two atoms of guard family {family!r}", r.state, r.event))
        seen_families.add(family)
        if family not in allowed_families:
            findings.append(_finding(
                "determinism", table,
                f"guard family {family!r} is not observable on "
                f"{r.event.value} rows", r.state, r.event))
    plain_catalog = known_actions_for(r.event)
    for action in r.actions:
        kind = action_kind(action)
        if kind in ("bus", "rebus"):
            suffix = action.split(":", 1)[1]
            if suffix not in BUS_REQUESTS:
                findings.append(_finding(
                    "determinism", table,
                    f"unknown bus request {action!r}", r.state, r.event))
            elif kind == "bus" and r.event not in PROCESSOR_EVENTS:
                findings.append(_finding(
                    "determinism", table,
                    f"{action!r} is only legal on processor rows",
                    r.state, r.event))
            elif kind == "rebus" and r.event in (PROCESSOR_EVENTS
                                                 | SNOOP_EVENTS):
                findings.append(_finding(
                    "determinism", table,
                    f"{action!r} is only legal on fill/completion rows",
                    r.state, r.event))
        elif kind == "error":
            if action.split(":", 1)[1] not in table.errors:
                findings.append(_finding(
                    "determinism", table,
                    f"error action {action!r} has no message template",
                    r.state, r.event))
        elif action not in plain_catalog:
            findings.append(_finding(
                "determinism", table,
                f"unknown action {action!r} for {r.event.value} rows",
                r.state, r.event))
    return findings


# -- completeness -----------------------------------------------------------


def _required_events(table: TransitionTable) -> tuple[set[Event], set[Event],
                                                      set[Event]]:
    """(snoop, fill, done) events the issued-operation alphabet implies."""
    ops = table.issued_ops()
    snoop = {SNOOP_EVENT[op] for op in ops if op in SNOOP_EVENT}
    fill = {FILL_EVENT[op] for op in ops if op in FILL_EVENT}
    done = {DONE_EVENT[op] for op in ops if op in DONE_EVENT}
    return snoop, fill, done


def _check_completeness(table: TransitionTable) -> list[Finding]:
    findings = []
    states = _coverable_states(table)
    valid_states = [s for s in states if s is not CacheState.INVALID]
    completion_states = [CacheState.INVALID] + [
        s for s in valid_states if s.readable and not s.writable]
    snoop_req, fill_req, done_req = _required_events(table)

    processor_req = [Event.PR_READ, Event.PR_WRITE, Event.PR_WRITE_BLOCK]
    if table.has_lock_rows:
        processor_req += [Event.PR_LOCK, Event.PR_UNLOCK]

    def require(state: CacheState, event: Event) -> None:
        rules = table.rules_for(state, event)
        if not rules:
            findings.append(_finding(
                "completeness", table,
                f"no transition for {event.value} at {state.value}",
                state, event))
            return
        missing, _ambiguous = _coverage_gaps(table, state, event)
        for ctx in missing:
            findings.append(_finding(
                "completeness", table,
                f"no row matches context {_fmt_ctx(ctx)}", state, event))

    for event in sorted(processor_req, key=lambda e: e.value):
        for state in states:
            require(state, event)
    for event in sorted(snoop_req, key=lambda e: e.value):
        for state in valid_states:
            require(state, event)
    for event in sorted(fill_req, key=lambda e: e.value):
        require(CacheState.INVALID, event)
    for event in sorted(done_req, key=lambda e: e.value):
        for state in completion_states:
            require(state, event)
    return findings


# -- reachability -----------------------------------------------------------


def _check_reachability(table: TransitionTable) -> list[Finding]:
    findings = []
    reachable = table.reachable_states()
    for state in sorted(table.states_mentioned() - reachable,
                        key=lambda s: s.value):
        findings.append(_finding(
            "reachability", table,
            f"state {state.value} is never reached from INVALID", state))
    for r in table.rules:
        if r.state not in reachable:
            findings.append(_finding(
                "reachability", table,
                f"dead row (state unreachable): {r.describe()}",
                r.state, r.event))
    return findings


# -- write serialization (Section C) ----------------------------------------


def _check_write_serialization(table: TransitionTable) -> list[Finding]:
    findings = []
    for r in table.rules:
        refused = "refuse-lock" in r.actions
        if r.event in INVALIDATING_SNOOP_EVENTS:
            if (r.state.writable and r.next_state.writable and not refused):
                findings.append(_finding(
                    "write-serialization", table,
                    "a foreign access leaves this writable copy writable "
                    "(two writers possible)", r.state, r.event))
            if (r.event in EXCLUSIVE_SEEKING_EVENTS
                    and r.state is not CacheState.INVALID
                    and r.next_state is not CacheState.INVALID
                    and not refused):
                findings.append(_finding(
                    "write-serialization", table,
                    "an exclusive-seeking access leaves this copy valid "
                    "(stale data beside the new writer)",
                    r.state, r.event))
            if (r.state.dirty and r.event in (Event.SN_READ, Event.SN_EXCL)
                    and not any(a in _DIRTY_SAFE_ACTIONS
                                for a in r.actions)):
                findings.append(_finding(
                    "write-serialization", table,
                    "dirty data is neither supplied nor flushed when the "
                    "block is taken", r.state, r.event))
        if r.event is Event.FILL_READ:
            if (r.next_state.writable and "unshared" not in r.guard
                    and "mem-owner" not in r.guard):
                findings.append(_finding(
                    "write-serialization", table,
                    "a possibly-shared read fill lands write privilege",
                    r.state, r.event))
        if r.event is Event.FILL_EXCL:
            if ("dirty-supplier" in r.guard and "mem-owner" not in r.guard
                    and not r.next_state.dirty):
                findings.append(_finding(
                    "write-serialization", table,
                    "dirtiness from the supplier is dropped on an "
                    "exclusive fill", r.state, r.event))
    return findings


# -- lock-state sanity ------------------------------------------------------


def _lock_entry_sanctioned(r: Rule) -> bool:
    return (r.state in _LOCKED
            or r.event in (Event.PR_LOCK, Event.FILL_LOCK, Event.PR_RMW)
            or "refuse-lock" in r.actions
            or "lock-in-place" in r.actions
            or "mem-owner" in r.guard
            or (r.event is Event.DONE_UPGRADE and "lock-intent" in r.guard))


def _check_lock_sanity(table: TransitionTable) -> list[Finding]:
    findings = []
    has_lock_instr = table.has_event(Event.PR_LOCK)
    for r in table.rules:
        touches_lock = r.state in _LOCKED or r.next_state in _LOCKED
        if touches_lock and not has_lock_instr:
            findings.append(_finding(
                "lock-state", table,
                "lock states appear but the protocol has no lock "
                "instruction rows", r.state, r.event))
            continue
        if r.next_state in _LOCKED and not _lock_entry_sanctioned(r):
            findings.append(_finding(
                "lock-state", table,
                "a lock state is entered outside the lock instruction, "
                "lock fill, refusal, or spilled-lock recovery paths",
                r.state, r.event))
    refuses = any("refuse-lock" in r.actions for r in table.rules)
    if refuses:
        wakeup = table.rules_for(CacheState.LOCK_WAITER, Event.PR_UNLOCK)
        if not any("broadcast-unlock" in r.actions for r in wakeup):
            findings.append(_finding(
                "lock-state", table,
                "waiters are recorded (refuse-lock) but unlocking a "
                "LOCK_WAITER block never broadcasts the wakeup",
                CacheState.LOCK_WAITER, Event.PR_UNLOCK))
    return findings


# -- directory home-bank tables ---------------------------------------------
#
# The home bank prunes broadcasts down to the sharer set, so its table
# carries the soundness burden the snoop bus got for free.  Three rule
# families (see repro.directory_backend.table):
#
# * directory-completeness -- every bus operation maps to a directory
#   event (DIR_EVENT_OF is total), every (state, event) bucket has a
#   unique most-specific row under every guard combination, and actions
#   come from the directory catalog.
# * directory-sharer-drop -- every delivery row must ``enroll`` the
#   requester and ``refresh`` membership afterwards, and rows at
#   sharer-bearing states must probe: any of those dropped silently
#   loses a sharer, which later reads stale data.
# * directory-overflow-policy -- once the representation is imprecise
#   (the OVERFLOW state, or a ``dir-overflowed``-guarded row), probing
#   only the listed sharers is unsound; the row must ``probe-all``.


#: Home states whose entries may list other caches: their rows must
#: probe, or an invalidation never reaches the listed copies.
_SHARER_BEARING = ("home-shared", "home-owned", "home-overflow")


def lint_directory_table(table: TransitionTable) -> list[Finding]:
    """Run the directory rule families over one home-bank table."""
    findings: list[Finding] = []
    findings.extend(_check_directory_completeness(table))
    findings.extend(_check_directory_sharer_drop(table))
    findings.extend(_check_directory_overflow_policy(table))
    return findings


def _dir_combos(rules: Iterable[Rule], families_map) -> list[frozenset[str]]:
    """All full guard contexts over the families the bucket mentions."""
    atom_family = {atom: family for family, atoms in families_map.items()
                   for atom in atoms}
    families = sorted({atom_family[a] for r in rules for a in r.guard
                       if a in atom_family})
    return [frozenset(c) for c in
            itertools.product(*[families_map[f] for f in families])]


def _check_directory_completeness(table: TransitionTable) -> list[Finding]:
    from repro.bus.transaction import BusOp
    from repro.directory_backend.table import (DIR_ACTIONS, DIR_EVENT_OF,
                                               DIR_GUARD_FAMILIES, DirEvent,
                                               HomeState)

    findings: list[Finding] = []
    for op in BusOp:
        if op not in DIR_EVENT_OF:
            findings.append(Finding(
                "directory-completeness", table.name,
                f"bus operation {op.value} maps to no directory event "
                f"(DIR_EVENT_OF is not total)"))
    dir_atoms = {atom for atoms in DIR_GUARD_FAMILIES.values()
                 for atom in atoms}
    for r in table.rules:
        for atom in sorted(r.guard):
            if atom not in dir_atoms:
                findings.append(_finding(
                    "directory-completeness", table,
                    f"unknown directory guard atom {atom!r}",
                    r.state, r.event))
        for action in r.actions:
            if action not in DIR_ACTIONS:
                findings.append(_finding(
                    "directory-completeness", table,
                    f"unknown directory action {action!r}",
                    r.state, r.event))
    for state in HomeState:
        for event in DirEvent:
            rules = table.rules_for(state, event)
            if not rules:
                findings.append(_finding(
                    "directory-completeness", table,
                    f"no transition for {event.value} at {state.value}",
                    state, event))
                continue
            for ctx in _dir_combos(rules, DIR_GUARD_FAMILIES):
                matches = [r for r in rules if r.matches(ctx)]
                if not matches:
                    findings.append(_finding(
                        "directory-completeness", table,
                        f"no row matches context {_fmt_ctx(ctx)}",
                        state, event))
                    continue
                best = max(len(r.guard) for r in matches)
                if sum(1 for r in matches if len(r.guard) == best) > 1:
                    findings.append(_finding(
                        "directory-completeness", table,
                        f"two equally-specific rows match {_fmt_ctx(ctx)}",
                        state, event))
    return findings


def _check_directory_sharer_drop(table: TransitionTable) -> list[Finding]:
    from repro.directory_backend.table import PROBE_ACTIONS

    findings: list[Finding] = []
    for r in table.rules:
        actions = set(r.actions)
        if "enroll" not in actions:
            findings.append(_finding(
                "directory-sharer-drop", table,
                "the requester is never enrolled; its copy is untracked "
                "and later invalidations miss it", r.state, r.event))
        if "refresh" not in actions:
            findings.append(_finding(
                "directory-sharer-drop", table,
                "membership is never refreshed; caches this transaction "
                "changed keep their stale listing", r.state, r.event))
        if (r.state.value in _SHARER_BEARING
                and not actions & PROBE_ACTIONS):
            findings.append(_finding(
                "directory-sharer-drop", table,
                "a sharer-bearing state is never probed; listed copies "
                "go stale silently", r.state, r.event))
    return findings


def _check_directory_overflow_policy(table: TransitionTable) -> list[Finding]:
    from repro.directory_backend.table import HomeState

    findings: list[Finding] = []
    for r in table.rules:
        imprecise = (r.state is HomeState.OVERFLOW
                     or "dir-overflowed" in r.guard)
        if imprecise and "probe-all" not in r.actions:
            findings.append(_finding(
                "directory-overflow-policy", table,
                "an overflowed (imprecise) entry is not probed by "
                "broadcast; untracked sharers keep stale copies",
                r.state, r.event))
    return findings
