"""Static linter for table-driven coherence protocols.

``lint_table`` runs the five rule families (completeness, determinism,
reachability, write-serialization, lock-state sanity) over one
:class:`~repro.protocols.table.TransitionTable`; ``lint_all`` runs them
over every registered protocol and ``build_report`` renders the
schema-stamped JSON consumed by CI and ``scripts/validate_trace.py``.
"""

from repro.lint.report import build_report, lint_all, lint_protocol
from repro.lint.rules import (
    CHECKS,
    EXCLUSIVE_SEEKING_EVENTS,
    INVALIDATING_SNOOP_EVENTS,
    Finding,
    lint_table,
)

__all__ = [
    "CHECKS",
    "EXCLUSIVE_SEEKING_EVENTS",
    "INVALIDATING_SNOOP_EVENTS",
    "Finding",
    "build_report",
    "lint_all",
    "lint_protocol",
    "lint_table",
]
