"""Static linter for table-driven coherence protocols.

``lint_table`` runs the five cache rule families (completeness,
determinism, reachability, write-serialization, lock-state sanity) over
one :class:`~repro.protocols.table.TransitionTable` -- or, for tables
with ``table_kind == "directory"``, the three directory home-bank
families (directory-completeness, directory-sharer-drop,
directory-overflow-policy).  ``lint_all`` runs them over every
registered protocol plus the directory home-bank policy, and
``build_report`` renders the schema-stamped JSON consumed by CI and
``scripts/validate_trace.py``.
"""

from repro.lint.report import build_report, lint_all, lint_protocol
from repro.lint.rules import (
    CACHE_CHECKS,
    CHECKS,
    DIRECTORY_CHECKS,
    EXCLUSIVE_SEEKING_EVENTS,
    INVALIDATING_SNOOP_EVENTS,
    Finding,
    lint_directory_table,
    lint_table,
)

__all__ = [
    "CACHE_CHECKS",
    "CHECKS",
    "DIRECTORY_CHECKS",
    "EXCLUSIVE_SEEKING_EVENTS",
    "INVALIDATING_SNOOP_EVENTS",
    "Finding",
    "build_report",
    "lint_all",
    "lint_directory_table",
    "lint_protocol",
    "lint_table",
]
