"""Command-line interface: ``python -m repro``.

Every data-producing subcommand is a thin wrapper over the
:mod:`repro.api` facade -- ``run`` over :func:`repro.api.simulate`,
``sweep`` over :func:`repro.api.sweep`, ``conformance`` over
:func:`repro.api.conform`, and ``check`` over :func:`repro.api.check`
(the schedule-space model checker).  The CLI owns only argument parsing
and rendering.

Examples::

    python -m repro run --protocol bitar-despain --workload lock-contention
    python -m repro run --protocol illinois --workload sharing -n 8
    python -m repro check --protocol bitar-despain --mutate
    python -m repro table1
    python -m repro figure10
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import LockStyle
from repro.analysis import (
    build_table1,
    lock_metrics,
    render_figure10,
    render_table,
    render_table2,
    traffic_metrics,
)
from repro.bus.fabric import FABRIC_KINDS, TOPOLOGY_ENV
from repro.protocols import DISPATCH_ENV, DISPATCH_MODES, PROTOCOLS
from repro.workloads.registry import (WORKLOADS, canonical_workload_name,
                                      default_lock_style,
                                      default_words_per_block)

#: Flags removed after their PR-3 deprecation window: old spelling ->
#: the replacement named in the exit-2 error.
REMOVED_FLAGS = {
    "--verify-every": "--check-interval",
    "--cache-blocks": "--num-blocks",
}


class _RemovedFlag(argparse.Action):
    """A flag that no longer exists: fail fast, naming the replacement.

    Still registered (with ``nargs=1`` so ``--old 32`` parses as a unit)
    so users get the precise replacement instead of argparse's generic
    ``unrecognized arguments`` -- but any use is an error."""

    def __call__(self, parser, namespace, values, option_string=None):
        replacement = REMOVED_FLAGS[option_string]
        print(f"repro: error: {option_string} was removed; "
              f"use {replacement}", file=sys.stderr)
        raise SystemExit(2)


def _add_fabric_flags(parser: argparse.ArgumentParser) -> None:
    """The directory-fabric knobs shared by ``run`` and ``sweep``."""
    from repro.directory_backend import DIRECTORY_ENTRY_KINDS

    parser.add_argument("--directory-banks", type=int, default=None,
                        metavar="K",
                        help="home banks of the directory fabric "
                             "(replaces overloading --clusters)")
    parser.add_argument("--directory-entry", choices=DIRECTORY_ENTRY_KINDS,
                        default=None,
                        help="sharer-set representation of the directory "
                             "fabric (default full-bit-vector)")
    parser.add_argument("--directory-pointers", type=int, default=None,
                        metavar="N",
                        help="pointers per entry of the limited-pointer "
                             "representation (default 2)")
    parser.add_argument("--directory-region-size", type=int, default=None,
                        metavar="K",
                        help="caches per region bit of the coarse-vector "
                             "representation (default 4)")
    parser.add_argument("--hop-cycles", type=int, default=None,
                        metavar="N",
                        help="inter-cluster / network hop latency in "
                             "cycles")
    parser.add_argument("--lookup-cycles", type=int, default=None,
                        metavar="N",
                        help="directory home-bank lookup latency in "
                             "cycles")


def _reject_fabric_conflicts(args: argparse.Namespace) -> None:
    """``--clusters`` still names the clustered fabric's clusters (and,
    for compatibility, directory banks), but giving it alongside the
    explicit ``--directory-banks`` is ambiguous: exit 2 naming both."""
    if args.clusters is not None and args.directory_banks is not None:
        print("repro: error: --clusters and --directory-banks cannot be "
              "combined; use --directory-banks for the directory fabric "
              "and --clusters for the clustered fabric", file=sys.stderr)
        raise SystemExit(2)


def _workload_name(value: str) -> str:
    """``--workload`` validator: accepts hyphenated or underscore
    spellings; an unknown name exits 2 listing the valid names (the
    CLI's flag-error convention)."""
    try:
        return canonical_workload_name(value)
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown workload {value!r}; valid names: "
            f"{', '.join(sorted(WORKLOADS))}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Simulate the cache-synchronization protocols of Bitar & "
            "Despain (ISCA 1986)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a workload and print statistics")
    run.add_argument("--protocol", choices=sorted(PROTOCOLS),
                     default="bitar-despain")
    run.add_argument("--workload", type=_workload_name,
                     default="lock-contention", metavar="NAME",
                     help="registered workload name (see 'repro "
                          "protocols' docs; underscore spellings accepted)")
    run.add_argument("-n", "--processors", type=int, default=4)
    run.add_argument("--buses", type=int, default=1,
                     help="broadcast buses (1 or 2; blocks interleave)")
    run.add_argument("--topology", choices=FABRIC_KINDS, default=None,
                     help="interconnect fabric (default: snoop, or the "
                          f"{TOPOLOGY_ENV} environment variable)")
    run.add_argument("--clusters", type=int, default=None, metavar="K",
                     help="clusters of the clustered fabric")
    _add_fabric_flags(run)
    run.add_argument("--words-per-block", type=int, default=None,
                     help="block size in words (default 4; 1 for rudolph-segall)")
    run.add_argument("--num-blocks", type=int, default=64,
                     help="block frames per cache (default 64)")
    run.add_argument("--cache-blocks", action=_RemovedFlag, nargs=1,
                     help=argparse.SUPPRESS)
    run.add_argument("--lock-style",
                     choices=[s.value for s in LockStyle], default=None,
                     help="defaults to cache-lock on the proposal, ttas elsewhere")
    run.add_argument("--work-while-waiting", action="store_true",
                     help="execute ready sections while busy-waiting (E.4)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--check-interval", type=int, default=0, metavar="N",
                     help="run the invariant checker every N cycles")
    run.add_argument("--verify-every", action=_RemovedFlag, nargs=1,
                     help=argparse.SUPPRESS)
    run.add_argument("--trace", metavar="FILE", default=None,
                     help="drive the simulator from a trace file instead "
                          "of a named workload")
    run.add_argument("--dump-trace", metavar="FILE", default=None,
                     help="write the generated workload to a trace file")
    run.add_argument("--json", action="store_true",
                     help="emit the full statistics as JSON")
    run.add_argument("--dispatch", choices=DISPATCH_MODES, default=None,
                     help="protocol execution core (default: compiled, or "
                          f"the {DISPATCH_ENV} environment variable)")
    run.add_argument("--fast-forward", action="store_true",
                     help="event-skip execution (identical statistics, "
                          "much faster on workloads with quiet spans)")
    run.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="write the interval sample series and metric "
                          "registry (.jsonl lines, .csv, or .json full dump)")
    run.add_argument("--timeline", metavar="FILE", default=None,
                     help="write a Chrome trace-event timeline (load in "
                          "ui.perfetto.dev): bus occupancy and lock "
                          "hold/wait slices")
    run.add_argument("--heatmap", nargs="?", const="-", default=None,
                     metavar="FILE",
                     help="print the per-block heatmap (invalidations, "
                          "c2c transfers, lock handoffs); with FILE, also "
                          "write it as JSON")
    run.add_argument("--sample-interval", type=int, default=100, metavar="N",
                     help="observability sampling interval in cycles "
                          "(default 100)")
    run.add_argument("--attribution", nargs="?", const="-", default=None,
                     metavar="FILE",
                     help="trace the run causally and print the cycle-"
                          "attribution report (every cycle in exactly one "
                          "bucket) plus the critical path; with FILE, also "
                          "write the stamped report as JSON")
    run.add_argument("--spans-out", metavar="FILE", default=None,
                     help="trace the run causally and write the span "
                          "trace (kind span-trace JSON); spans also show "
                          "up in the --timeline export with flow arrows")
    run.add_argument("--max-wall-seconds", type=float, default=None,
                     metavar="SECONDS",
                     help="abort a wedged run after this much wall-clock "
                          "time, printing bus/cache/lock diagnostics")

    sweep = sub.add_parser(
        "sweep", help="sweep processor count and print cycles/utilization"
    )
    sweep.add_argument("--protocol", choices=sorted(PROTOCOLS),
                       default="bitar-despain")
    sweep.add_argument("--workload", type=_workload_name,
                       default="lock-contention", metavar="NAME")
    sweep.add_argument("--processors", nargs="+", type=int,
                       default=[2, 4, 8])
    sweep.add_argument("--topology", choices=FABRIC_KINDS, default=None,
                       help="interconnect fabric for every sweep point "
                            f"(default: snoop, or {TOPOLOGY_ENV})")
    sweep.add_argument("--clusters", type=int, default=None, metavar="K",
                       help="clusters of the clustered fabric")
    _add_fabric_flags(sweep)
    sweep.add_argument("--dispatch", choices=DISPATCH_MODES, default=None,
                       help="protocol execution core (default: compiled, or "
                            f"the {DISPATCH_ENV} environment variable)")
    sweep.add_argument("--fast-forward", action="store_true",
                       help="event-skip execution for every sweep point")
    sweep.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes for the sweep points")
    sweep.add_argument("--metrics-out", metavar="DIR", default=None,
                       help="collect per-point observability and write one "
                            "sample-series JSONL per sweep point into DIR")
    sweep.add_argument("--sample-interval", type=int, default=100,
                       metavar="N",
                       help="observability sampling interval in cycles "
                            "(default 100)")
    sweep.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-point wall-clock budget; a point that "
                            "exceeds it is retried, then marked timeout")
    sweep.add_argument("--retries", type=int, default=1, metavar="N",
                       help="retries per point after the first attempt "
                            "(default 1)")
    sweep.add_argument("--keep-going", action="store_true",
                       help="finish the sweep past bad points and report "
                            "per-point statuses instead of aborting")
    sweep.add_argument("--inject-faults", metavar="SPEC", default=None,
                       help="chaos mode: seeded fault plan, e.g. "
                            "'kill@1,hang@2' or 'raise@*%%25' "
                            "(see docs/resilience.md)")
    sweep.add_argument("--fault-seed", type=int, default=0, metavar="N",
                       help="seed for fault-plan draws and retry jitter "
                            "(default 0)")
    sweep.add_argument("--progress", action="store_true",
                       help="live progress line on stderr (points "
                            "ok/failed/quarantined, ETA); only when stderr "
                            "is a TTY")

    compare = sub.add_parser(
        "compare", help="run one workload across the whole protocol field"
    )
    compare.add_argument("--workload", type=_workload_name,
                         default="lock-contention", metavar="NAME")
    compare.add_argument("-n", "--processors", type=int, default=4)
    compare.add_argument("--protocols", nargs="+", default=None,
                         choices=sorted(PROTOCOLS),
                         help="defaults to the six Table-1 protocols")

    conform = sub.add_parser(
        "conformance", help="run the protocol conformance battery"
    )
    conform.add_argument("--protocol", choices=sorted(PROTOCOLS),
                         required=True)

    check = sub.add_parser(
        "check",
        help="model-check schedule space: exhaustive interleaving "
             "exploration, fuzzing, and seeded-bug mutation testing",
    )
    check.add_argument("--protocol", choices=[*sorted(PROTOCOLS), "all"],
                       default="all",
                       help="protocol to check (default: all ten)")
    check.add_argument("--scenario", nargs="+", default=None,
                       metavar="NAME",
                       help="restrict to named scenarios (default: the "
                            "whole battery; see docs/model_checking.md)")
    check.add_argument("--fuzz-seeds", type=int, default=32, metavar="N",
                       help="random schedules per fuzzed scenario "
                            "(default 32)")
    check.add_argument("--fuzz-budget", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock cap shared by all fuzzing")
    check.add_argument("--max-schedules", type=int, default=20_000,
                       metavar="N",
                       help="exploration budget per (scenario, protocol)")
    check.add_argument("--mutate", nargs="*", default=None, metavar="NAME",
                       help="run the mutation-testing harness (no names = "
                            "all seeded bugs)")
    check.add_argument("--replay", metavar="FILE", default=None,
                       help="replay a saved counterexample trace instead "
                            "of checking")
    check.add_argument("--out", metavar="DIR", default=None,
                       help="write shrunk counterexample traces into DIR")
    check.add_argument("--json", action="store_true",
                       help="emit the full check report as JSON")

    lint = sub.add_parser(
        "lint",
        help="statically lint protocol transition tables (completeness, "
             "determinism, reachability, write-serialization, lock-state)",
    )
    lint_target = lint.add_mutually_exclusive_group(required=True)
    lint_target.add_argument("--protocol", choices=sorted(PROTOCOLS),
                             help="lint one protocol's table")
    lint_target.add_argument("--all", action="store_true",
                             help="lint every registered protocol")
    lint.add_argument("--json", action="store_true",
                      help="emit the schema-stamped lint report as JSON")

    diagram = sub.add_parser(
        "diagram",
        help="emit a protocol's state diagram generated from its "
             "transition table",
    )
    diagram.add_argument("protocol", choices=sorted(PROTOCOLS))
    diagram.add_argument("--format", choices=("dot", "mermaid"),
                         default="dot",
                         help="Graphviz DOT (default) or Mermaid "
                              "stateDiagram-v2")

    scenario = sub.add_parser(
        "scenario",
        help="declarative scenario tools: list, export, run, fuzz, "
             "replay (see docs/scenarios.md)",
    )
    scen_sub = scenario.add_subparsers(dest="scenario_command",
                                       required=True)

    scen_sub.add_parser("list", help="list the named scenario library")

    s_export = scen_sub.add_parser(
        "export", help="write a named scenario as schema-stamped JSON")
    s_export.add_argument("name", help="library scenario name")
    s_export.add_argument("--out", metavar="FILE", default=None,
                          help="output path (default: stdout)")

    s_run = scen_sub.add_parser(
        "run", help="compile a scenario (library name or saved JSON "
                    "file) and simulate it")
    s_run.add_argument("scenario",
                       help="library name or path to a scenarios/*.json file")
    s_run.add_argument("--protocol", choices=sorted(PROTOCOLS),
                       default="bitar-despain")
    s_run.add_argument("-n", "--processors", type=int, default=4)
    s_run.add_argument("--lock-style",
                       choices=[s.value for s in LockStyle], default=None,
                       help="defaults to cache-lock on the proposal, "
                            "ttas elsewhere")
    s_run.add_argument("--fast-forward", action="store_true")
    s_run.add_argument("--json", action="store_true",
                       help="emit the full statistics as JSON")

    s_fuzz = scen_sub.add_parser(
        "fuzz", help="fuzz scenarios through the model-checker battery "
                     "(seeded alterations; shrunk failures are saved)")
    s_fuzz.add_argument("--scenario", nargs="+", default=None,
                        metavar="NAME",
                        help="library scenario(s) to fuzz (default: all)")
    s_fuzz.add_argument("--protocol", choices=sorted(PROTOCOLS),
                        default="bitar-despain")
    s_fuzz.add_argument("-n", "--processors", type=int, default=3)
    s_fuzz.add_argument("--seed", type=int, default=0)
    s_fuzz.add_argument("--probes", type=int, default=24, metavar="N",
                        help="altered-scenario probes per scenario "
                             "(default 24)")
    s_fuzz.add_argument("--schedules", type=int, default=3, metavar="N",
                        help="random schedules per probe (default 3)")
    s_fuzz.add_argument("--budget", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock cap shared by all scenarios")
    s_fuzz.add_argument("--mutate", metavar="NAME", default=None,
                        help="fuzz against a seeded protocol mutation; "
                             "the session then *expects* to catch it")
    s_fuzz.add_argument("--out", metavar="DIR", default=None,
                        help="write shrunk scenario-failure fixtures "
                             "into DIR")
    s_fuzz.add_argument("--json", action="store_true",
                        help="emit the session results as JSON")

    s_replay = scen_sub.add_parser(
        "replay", help="replay a saved scenario-failure fixture")
    s_replay.add_argument("file", help="scenario-failure JSON file")
    s_replay.add_argument("--json", action="store_true")

    table1 = sub.add_parser("table1", help="print the regenerated Table 1")
    table1.add_argument("--format", choices=("text", "md", "csv"),
                        default="text",
                        help="plain text (default), Markdown, or CSV")
    sub.add_parser("table2", help="print the regenerated Table 2")
    sub.add_parser("figure10", help="print the state-transition enumeration")
    sub.add_parser("protocols", help="list the implemented protocols")
    return parser


# Deprecated aliases kept for callers of the old helper names.
_default_wpb = default_words_per_block
_default_style = default_lock_style


def command_run(args: argparse.Namespace) -> int:
    from repro import api

    _reject_fabric_conflicts(args)
    fabric = dict(
        clusters=args.clusters,
        directory_banks=args.directory_banks,
        directory_entry=args.directory_entry,
        directory_pointers=args.directory_pointers,
        directory_region_size=args.directory_region_size,
        hop_cycles=args.hop_cycles,
        lookup_cycles=args.lookup_cycles,
    )
    programs = None
    if args.trace:
        from repro.workloads.trace import load_trace

        programs = load_trace(args.trace, num_processors=args.processors)
    style = LockStyle(args.lock_style) if args.lock_style else None
    if args.dump_trace:
        from repro.workloads.trace import dump_trace

        if programs is None:
            config = api._build_config(
                args.protocol, processors=args.processors, buses=args.buses,
                topology=args.topology, **fabric,
                words_per_block=args.words_per_block,
                num_blocks=args.num_blocks,
                work_while_waiting=args.work_while_waiting, seed=args.seed,
            )
            programs = api.build_workload(args.workload, config, style)
        with open(args.dump_trace, "w", encoding="utf-8") as handle:
            handle.write(dump_trace(programs))
    tracing = bool(args.attribution or args.spans_out)
    observe = bool(args.metrics_out or args.timeline or args.heatmap
                   or tracing)
    from repro.common.errors import WatchdogTimeout

    try:
        result = api.simulate(
            args.protocol,
            args.workload,
            processors=args.processors,
            programs=programs,
            lock_style=style,
            buses=args.buses,
            topology=args.topology,
            **fabric,
            words_per_block=args.words_per_block,
            num_blocks=args.num_blocks,
            work_while_waiting=args.work_while_waiting,
            seed=args.seed,
            check_interval=args.check_interval,
            fast_forward=args.fast_forward,
            dispatch=args.dispatch,
            sample_interval=args.sample_interval if observe else 0,
            tracing=tracing,
            max_wall_seconds=args.max_wall_seconds,
        )
    except WatchdogTimeout as exc:
        _print_watchdog(exc)
        return 1
    stats = result.stats
    if result.obs is not None:
        _write_observability(result.obs, args)

    if args.json:
        print(stats.to_json())
        return 0
    rows = [[k, v] for k, v in stats.to_dict().items()]
    print(render_table(["metric", "value"], rows,
                       title=f"{args.workload} on {args.protocol} "
                             f"({args.processors} processors)"))
    locks = lock_metrics(stats)
    if locks.acquisitions:
        print(f"\nlock acquisitions       : {locks.acquisitions}")
        print(f"bus cycles/acquisition  : {locks.bus_cycles_per_acquisition:.1f}")
        print(f"failed attempts/acq     : {locks.failed_attempts_per_acquisition:.2f}")
    traffic = traffic_metrics(stats)
    print(f"bus cycles/reference    : {traffic.cycles_per_reference:.2f}")
    return 0


def _print_watchdog(exc) -> None:
    """Render a watchdog abort: the budget, then where the machine was
    stuck (bus, per-cache busy-waits, lock queue)."""
    print(f"repro: error: {exc}", file=sys.stderr)
    diag = exc.diagnostics or {}
    if not diag:
        return
    bus = diag.get("bus", {})
    print(f"  cycle {diag.get('cycle')}  bus busy={bus.get('busy')} "
          f"next_event={bus.get('next_event_cycle')} "
          f"requests_pending={diag.get('bus_requests_pending')}",
          file=sys.stderr)
    for entry in diag.get("lock_queue", ()):
        print(f"  lock-queue: cache {entry.get('cache')} block "
              f"{entry.get('block')} phase {entry.get('phase')}",
              file=sys.stderr)
    for proc in diag.get("processors", ()):
        if not proc.get("done"):
            print(f"  P{proc.get('pid')}: state={proc.get('state')} "
                  f"pc={proc.get('pc')} ops={proc.get('ops_completed')}",
                  file=sys.stderr)


def _write_observability(obs, args: argparse.Namespace) -> None:
    from repro.obs import build_heatmap, write_chrome_trace, write_samples

    if args.metrics_out:
        write_samples(obs, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.timeline:
        write_chrome_trace(obs, args.timeline)
        print(f"timeline written to {args.timeline} "
              f"(load in ui.perfetto.dev)")
    if args.spans_out:
        from repro.obs import write_spans

        write_spans(obs, args.spans_out)
        print(f"span trace written to {args.spans_out}")
    if args.attribution and obs.attribution is not None:
        from repro.obs.attribution import (AttributionReport, critical_path,
                                           render_critical_path)

        report = AttributionReport.from_dict(obs.attribution)
        print()
        print(report.render())
        print()
        print(render_critical_path(critical_path(obs.spans)))
        if args.attribution != "-":
            import json as _json

            with open(args.attribution, "w", encoding="utf-8") as handle:
                _json.dump(obs.attribution, handle, indent=2)
                handle.write("\n")
            print(f"attribution report written to {args.attribution}")
    if args.heatmap:
        heatmap = build_heatmap(obs)
        print()
        print(heatmap.render())
        if args.heatmap != "-":
            import json as _json

            with open(args.heatmap, "w", encoding="utf-8") as handle:
                _json.dump(heatmap.to_dict(), handle, indent=2)
            print(f"heatmap written to {args.heatmap}")


def _sweep_progress_printer():
    """A ``progress(done, total, statuses)`` callback rendering a live
    ``\\r`` status line on stderr, fed by the resilient executor's own
    point counters."""
    import time as _time

    start = _time.monotonic()

    def render(done: int, total: int, statuses: dict) -> None:
        elapsed = _time.monotonic() - start
        eta = elapsed / done * (total - done) if done else 0.0
        failed = statuses.get("failed", 0) + statuses.get("timeout", 0)
        sys.stderr.write(
            f"\rsweep {done}/{total}  ok={statuses.get('ok', 0)} "
            f"failed={failed} "
            f"quarantined={statuses.get('quarantined', 0)}  "
            f"eta {eta:4.0f}s")
        if done >= total:
            sys.stderr.write("\n")
        sys.stderr.flush()

    return render


def command_sweep(args: argparse.Namespace) -> int:
    from repro import api
    from repro.common.errors import SweepPointError

    _reject_fabric_conflicts(args)
    progress = None
    if args.progress and sys.stderr.isatty():
        progress = _sweep_progress_printer()
    try:
        result = api.sweep(
            args.protocol,
            args.workload,
            processors=args.processors,
            fast_forward=args.fast_forward,
            dispatch=args.dispatch,
            topology=args.topology,
            clusters=args.clusters,
            directory_banks=args.directory_banks,
            directory_entry=args.directory_entry,
            directory_pointers=args.directory_pointers,
            directory_region_size=args.directory_region_size,
            hop_cycles=args.hop_cycles,
            lookup_cycles=args.lookup_cycles,
            jobs=args.jobs,
            sample_interval=args.sample_interval if args.metrics_out else 0,
            timeout=args.timeout,
            max_attempts=1 + max(0, args.retries),
            keep_going=args.keep_going,
            faults=args.inject_faults,
            fault_seed=args.fault_seed,
            progress=progress,
        )
    except SweepPointError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        print("repro: (use --keep-going for partial results)",
              file=sys.stderr)
        return 1
    if args.metrics_out:
        import os

        from repro.obs import samples_jsonl

        os.makedirs(args.metrics_out, exist_ok=True)
        for n, point in zip(result.xs, result.observations or []):
            path = os.path.join(args.metrics_out, f"point_n{n}.jsonl")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(samples_jsonl(point))
        print(f"per-point sample series written to {args.metrics_out}/")
    degraded = not result.ok
    statuses = {p["index"]: p for p in result.point_status}
    rows = []
    for i, n in enumerate(result.xs):
        point = statuses.get(i, {})
        if result.stats and i < len(result.stats) and result.stats[i] is None:
            row = [n, "-", "-", "-"]
        else:
            row = [n,
                   int(result.series["cycles"][i]),
                   f"{result.series['bus utilization'][i]:.0%}",
                   int(result.series["failed lock attempts"][i])]
        if degraded:
            row.append(point.get("status", "ok"))
        rows.append(row)
    headers = ["processors", "cycles", "bus utilization", "failed attempts"]
    if degraded:
        headers.append("status")
    print(render_table(
        headers,
        rows,
        title=f"{args.workload} on {args.protocol}",
        align_left_first=False,
    ))
    if degraded:
        for p in result.point_status:
            if p["status"] != "ok":
                print(f"point x={p['x']}: {p['status']} after "
                      f"{p['attempts']} attempt(s): {p['error']}")
    retries = result.resilience.get("retries", {})
    restarts = result.resilience.get("pool_restarts", {})
    if retries or restarts:
        parts = []
        if retries:
            parts.append("retries " + ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(retries.items())))
        if restarts:
            parts.append("pool restarts " + ", ".join(
                f"{cause}={count}"
                for cause, count in sorted(restarts.items())))
        print("resilience: " + "; ".join(parts))
    return 0 if result.ok else 1


def command_compare(args: argparse.Namespace) -> int:
    from repro import TABLE1_PROTOCOLS
    from repro.analysis.comparison import compare_protocols, render_comparison

    protocols = args.protocols or list(TABLE1_PROTOCOLS)
    rows = compare_protocols(
        protocols,
        lambda cfg, style: WORKLOADS[args.workload](cfg, style),
        num_processors=args.processors,
    )
    print(render_comparison(
        rows, title=f"{args.workload} ({args.processors} processors)"
    ))
    return 0


def command_conformance(args: argparse.Namespace) -> int:
    from repro import api

    report = api.conform(args.protocol)
    if not report.ok:
        for finding in report.findings:
            print(f"FAIL {finding}")
        return 1
    print(f"{args.protocol}: conformant "
          f"(all applicable checks passed)")
    return 0


def _command_replay(path: str, as_json: bool) -> int:
    from repro.mc import Counterexample

    ce = Counterexample.load(path)
    outcome = ce.replay()
    reproduced = (outcome.failure is not None
                  and outcome.failure.kind == ce.failure.kind)
    if as_json:
        import json as _json

        print(_json.dumps({
            **ce.to_dict(),
            "replayed_failure": (outcome.failure.to_dict()
                                 if outcome.failure else None),
            "reproduced": reproduced,
        }, indent=2))
    else:
        where = f"{ce.scenario} on {ce.protocol}"
        if ce.mutation:
            where += f" (mutation {ce.mutation})"
        print(f"replaying {where}: schedule {ce.schedule}")
        if outcome.failure is None:
            print("no failure reproduced "
                  "(was the bug fixed since the trace was saved?)")
        else:
            print(f"{outcome.failure.kind}: {outcome.failure.message}")
        print("reproduced" if reproduced else "NOT reproduced")
    return 0 if reproduced else 1


def command_check(args: argparse.Namespace) -> int:
    from repro import api

    if args.replay:
        return _command_replay(args.replay, args.json)
    protocols = None if args.protocol == "all" else [args.protocol]
    mutations: bool | list[str] = False
    if args.mutate is not None:
        mutations = args.mutate if args.mutate else True
    report = api.check(
        protocols,
        scenarios=args.scenario,
        max_schedules=args.max_schedules,
        fuzz_seeds=args.fuzz_seeds,
        fuzz_budget=args.fuzz_budget,
        mutations=mutations,
        counterexample_dir=args.out,
    )
    if args.json:
        import json as _json

        print(_json.dumps(report.to_dict(), indent=2))
        return 0 if report.ok else 1
    for r in report.explorations:
        status = "ok" if r.ok else f"FAIL ({r.failure.kind})"
        bound = "" if r.complete else " [budget hit]"
        print(f"explore {r.protocol:16s} {r.scenario:16s} "
              f"{r.schedules:5d} schedules, {r.states:5d} states: "
              f"{status}{bound}")
    for r in report.fuzz_sessions:
        status = "ok" if r.ok else f"FAIL (seed {r.failing_seed})"
        print(f"fuzz    {r.protocol:16s} {r.scenario:16s} "
              f"{r.runs:5d} runs: {status}")
    for r in report.mutation_results:
        verdict = "caught" if r.caught else "MISSED"
        detail = ""
        if r.counterexample is not None:
            detail = (f" (schedule {r.counterexample.schedule}, "
                      f"{r.counterexample.failure.kind})")
        print(f"mutate  {r.mutation:28s} {verdict}{detail}")
    for path in report.saved_paths:
        print(f"counterexample written to {path}")
    print(f"{'OK' if report.ok else 'FAIL'}: "
          f"{report.schedules_explored} schedules in "
          f"{report.elapsed_seconds:.1f}s")
    return 0 if report.ok else 1


def _load_scenario_spec(name_or_path: str):
    """A library scenario by name, or a saved spec from a JSON file."""
    from pathlib import Path

    from repro.scenario import SCENARIOS, ScenarioSpec, build_scenario

    if name_or_path in SCENARIOS:
        return build_scenario(name_or_path)
    if name_or_path.endswith(".json") or Path(name_or_path).exists():
        return ScenarioSpec.load(name_or_path)
    print(f"repro: error: unknown scenario {name_or_path!r}; known: "
          f"{', '.join(sorted(SCENARIOS))} (or a path to a saved "
          f"scenario JSON)", file=sys.stderr)
    raise SystemExit(2)


def command_scenario(args: argparse.Namespace) -> int:
    import json as _json

    from repro.scenario import SCENARIOS, build_scenario, compile_scenario

    if args.scenario_command == "list":
        rows = []
        for name in sorted(SCENARIOS):
            spec = build_scenario(name)
            rows.append([name, len(spec.roles), len(spec.steps),
                         spec.description])
        print(render_table(["name", "roles", "steps", "description"], rows))
        return 0

    if args.scenario_command == "export":
        spec = _load_scenario_spec(args.name)
        payload = _json.dumps(spec.to_dict(), indent=2) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(payload)
            print(f"scenario written to {args.out}")
        else:
            print(payload, end="")
        return 0

    if args.scenario_command == "run":
        from repro import api

        spec = _load_scenario_spec(args.scenario)
        style = LockStyle(args.lock_style) if args.lock_style \
            else default_lock_style(args.protocol)
        config = api._build_config(args.protocol,
                                   processors=args.processors)
        programs = compile_scenario(spec, config, lock_style=style)
        result = api.simulate(args.protocol, workload=spec.name,
                              config=config, programs=programs,
                              lock_style=style,
                              fast_forward=args.fast_forward)
        if args.json:
            print(result.stats.to_json())
            return 0
        rows = [[k, v] for k, v in result.stats.to_dict().items()]
        print(render_table(["metric", "value"], rows,
                           title=f"scenario {spec.name} on {args.protocol} "
                                 f"({args.processors} processors)"))
        return 0

    if args.scenario_command == "fuzz":
        return _command_scenario_fuzz(args)

    if args.scenario_command == "replay":
        from repro.scenario.fuzz import ScenarioFailure

        fixture = ScenarioFailure.load(args.file)
        outcome = fixture.replay()
        reproduced = (outcome.failure is not None
                      and outcome.failure.kind == fixture.failure.kind)
        if args.json:
            print(_json.dumps({
                **fixture.to_dict(),
                "replayed_failure": (outcome.failure.to_dict()
                                     if outcome.failure else None),
                "reproduced": reproduced,
            }, indent=2))
        else:
            where = f"{fixture.spec.name} on {fixture.protocol}"
            if fixture.mutation:
                where += f" (mutation {fixture.mutation})"
            print(f"replaying {where}: {len(fixture.schedule)}-choice "
                  f"schedule")
            if outcome.failure is None:
                print("no failure reproduced "
                      "(was the bug fixed since the fixture was saved?)")
            else:
                print(f"{outcome.failure.kind}: {outcome.failure.message}")
            print("reproduced" if reproduced else "NOT reproduced")
        return 0 if reproduced else 1

    return 1  # pragma: no cover


def _command_scenario_fuzz(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from repro.scenario import SCENARIOS, build_scenario
    from repro.scenario.fuzz import fuzz_scenario

    mutation = None
    if args.mutate:
        from repro.mc.mutations import get_mutation

        mutation = get_mutation(args.mutate)
    names = args.scenario or sorted(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            print(f"repro: error: unknown scenario {name!r}; known: "
                  f"{', '.join(sorted(SCENARIOS))}", file=sys.stderr)
            return 2
    started = _time.monotonic()
    results = []
    saved: list[str] = []
    for name in names:
        budget = None
        if args.budget is not None:
            budget = args.budget - (_time.monotonic() - started)
            if budget <= 0:
                break
        result = fuzz_scenario(
            build_scenario(name), args.protocol,
            seed=args.seed, probes=args.probes,
            schedules_per_probe=args.schedules,
            mutation=mutation, processors=args.processors,
            time_budget=budget, base_name=name,
        )
        results.append(result)
        if result.failure is not None and args.out:
            import os

            os.makedirs(args.out, exist_ok=True)
            suffix = f"-{result.mutation}" if result.mutation else ""
            path = os.path.join(args.out,
                                f"scenario-failure-{name}{suffix}.json")
            result.failure.save(path)
            saved.append(path)
    found = [r for r in results if r.failure is not None]
    # Without a mutation, a failure is a real bug (session fails);
    # with one, the session *must* catch the seeded bug.
    ok = (not found) if mutation is None else bool(found)
    if args.json:
        print(_json.dumps({
            "results": [r.to_dict() for r in results],
            "saved": saved,
            "ok": ok,
        }, indent=2))
        return 0 if ok else 1
    for r in results:
        status = "ok" if r.failure is None \
            else f"FAIL ({r.failure.failure.kind})"
        extra = " [budget hit]" if r.budget_exhausted else ""
        print(f"fuzz {r.scenario:20s} {r.probes:3d} probes "
              f"{r.runs:4d} runs {r.rejected:3d} rejected: "
              f"{status}{extra}")
        if r.lint_findings:
            print(f"     linter flags the mutated table "
                  f"({len(r.lint_findings)} finding(s))")
    for path in saved:
        print(f"scenario failure written to {path}")
    if mutation is not None:
        print(f"mutation {mutation.name}: "
              f"{'caught' if found else 'MISSED'}")
    return 0 if ok else 1


def command_protocols(args: argparse.Namespace) -> int:
    rows = [
        [name, cls.features().citation, len(cls.states())]
        for name, cls in sorted(PROTOCOLS.items())
    ]
    print(render_table(["name", "citation", "states"], rows))
    return 0


def command_lint(args: argparse.Namespace) -> int:
    import json

    from repro.lint import build_report, lint_all, lint_protocol

    if args.all:
        findings = lint_all()
    else:
        findings = {args.protocol: lint_protocol(args.protocol)}
    report = build_report(findings)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for name in sorted(findings):
            complaints = findings[name]
            status = "ok" if not complaints else f"{len(complaints)} finding(s)"
            print(f"{name}: {status}")
            for finding in complaints:
                print(f"  {finding}")
    return 0 if report["ok"] else 1


def command_diagram(args: argparse.Namespace) -> int:
    from repro.analysis.diagram import render_diagram
    from repro.protocols import get_protocol
    from repro.protocols.table import TableProtocol

    cls = get_protocol(args.protocol)
    if not issubclass(cls, TableProtocol):
        print(f"repro: error: {args.protocol} is not table-driven",
              file=sys.stderr)
        return 2
    print(render_diagram(cls.table, args.format), end="")
    return 0


def command_table1(args: argparse.Namespace) -> int:
    table = build_table1()
    if args.format == "md":
        print(table.render_markdown(), end="")
    elif args.format == "csv":
        print(table.render_csv(), end="")
    else:
        print(table.render())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return command_run(args)
    if args.command == "sweep":
        return command_sweep(args)
    if args.command == "compare":
        return command_compare(args)
    if args.command == "conformance":
        return command_conformance(args)
    if args.command == "check":
        return command_check(args)
    if args.command == "scenario":
        return command_scenario(args)
    if args.command == "lint":
        return command_lint(args)
    if args.command == "diagram":
        return command_diagram(args)
    if args.command == "table1":
        return command_table1(args)
    if args.command == "table2":
        print(render_table2())
        return 0
    if args.command == "figure10":
        print(render_figure10())
        return 0
    if args.command == "protocols":
        return command_protocols(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
