"""Command-line interface: ``python -m repro``.

Runs a named workload on a chosen protocol and prints the statistics, the
regenerated Table 1/Table 2, or the Figure-10 transition enumeration.

Examples::

    python -m repro run --protocol bitar-despain --workload lock-contention
    python -m repro run --protocol illinois --workload sharing -n 8
    python -m repro table1
    python -m repro figure10
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import CacheConfig, LockStyle, SystemConfig, run_workload
from repro.analysis import (
    build_table1,
    lock_metrics,
    render_figure10,
    render_table,
    render_table2,
    traffic_metrics,
)
from repro.common.config import WaitMode
from repro.protocols import PROTOCOLS
from repro.workloads import (
    interleaved_sharing,
    lock_contention,
    migration,
    process_switch,
    producer_consumer,
    prolog_and_parallel,
    request_queue,
    sleep_wait,
    smith_stream,
)


def _lowered(programs, style: LockStyle):
    return [p.lowered(style) for p in programs]


WORKLOADS: dict[str, Callable] = {
    "lock-contention": lambda cfg, style: lock_contention(cfg, lock_style=style),
    "producer-consumer": lambda cfg, style: producer_consumer(cfg, lock_style=style),
    "request-queue": lambda cfg, style: request_queue(cfg, lock_style=style),
    "sharing": lambda cfg, style: interleaved_sharing(cfg),
    "migration": lambda cfg, style: migration(cfg),
    "process-switch": lambda cfg, style: process_switch(cfg),
    "smith": lambda cfg, style: smith_stream(cfg),
    "prolog": lambda cfg, style: _lowered(prolog_and_parallel(cfg), style),
    "sleep-wait": lambda cfg, style: _lowered(sleep_wait(cfg), style),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Simulate the cache-synchronization protocols of Bitar & "
            "Despain (ISCA 1986)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a workload and print statistics")
    run.add_argument("--protocol", choices=sorted(PROTOCOLS),
                     default="bitar-despain")
    run.add_argument("--workload", choices=sorted(WORKLOADS),
                     default="lock-contention")
    run.add_argument("-n", "--processors", type=int, default=4)
    run.add_argument("--buses", type=int, default=1,
                     help="broadcast buses (1 or 2; blocks interleave)")
    run.add_argument("--words-per-block", type=int, default=None,
                     help="block size in words (default 4; 1 for rudolph-segall)")
    run.add_argument("--cache-blocks", type=int, default=64)
    run.add_argument("--lock-style",
                     choices=[s.value for s in LockStyle], default=None,
                     help="defaults to cache-lock on the proposal, ttas elsewhere")
    run.add_argument("--work-while-waiting", action="store_true",
                     help="execute ready sections while busy-waiting (E.4)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--verify-every", type=int, default=0, metavar="N",
                     help="run the invariant checker every N cycles")
    run.add_argument("--trace", metavar="FILE", default=None,
                     help="drive the simulator from a trace file instead "
                          "of a named workload")
    run.add_argument("--dump-trace", metavar="FILE", default=None,
                     help="write the generated workload to a trace file")
    run.add_argument("--json", action="store_true",
                     help="emit the full statistics as JSON")
    run.add_argument("--fast-forward", action="store_true",
                     help="event-skip execution (identical statistics, "
                          "much faster on workloads with quiet spans)")
    run.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="write the interval sample series and metric "
                          "registry (.jsonl lines, .csv, or .json full dump)")
    run.add_argument("--timeline", metavar="FILE", default=None,
                     help="write a Chrome trace-event timeline (load in "
                          "ui.perfetto.dev): bus occupancy and lock "
                          "hold/wait slices")
    run.add_argument("--heatmap", nargs="?", const="-", default=None,
                     metavar="FILE",
                     help="print the per-block heatmap (invalidations, "
                          "c2c transfers, lock handoffs); with FILE, also "
                          "write it as JSON")
    run.add_argument("--sample-interval", type=int, default=100, metavar="N",
                     help="observability sampling interval in cycles "
                          "(default 100)")

    sweep = sub.add_parser(
        "sweep", help="sweep processor count and print cycles/utilization"
    )
    sweep.add_argument("--protocol", choices=sorted(PROTOCOLS),
                       default="bitar-despain")
    sweep.add_argument("--workload", choices=sorted(WORKLOADS),
                       default="lock-contention")
    sweep.add_argument("--processors", nargs="+", type=int,
                       default=[2, 4, 8])
    sweep.add_argument("--fast-forward", action="store_true",
                       help="event-skip execution for every sweep point")
    sweep.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes for the sweep points")
    sweep.add_argument("--metrics-out", metavar="DIR", default=None,
                       help="collect per-point observability and write one "
                            "sample-series JSONL per sweep point into DIR")
    sweep.add_argument("--sample-interval", type=int, default=100,
                       metavar="N",
                       help="observability sampling interval in cycles "
                            "(default 100)")

    compare = sub.add_parser(
        "compare", help="run one workload across the whole protocol field"
    )
    compare.add_argument("--workload", choices=sorted(WORKLOADS),
                         default="lock-contention")
    compare.add_argument("-n", "--processors", type=int, default=4)
    compare.add_argument("--protocols", nargs="+", default=None,
                         choices=sorted(PROTOCOLS),
                         help="defaults to the six Table-1 protocols")

    conform = sub.add_parser(
        "conformance", help="run the protocol conformance battery"
    )
    conform.add_argument("--protocol", choices=sorted(PROTOCOLS),
                         required=True)

    sub.add_parser("table1", help="print the regenerated Table 1")
    sub.add_parser("table2", help="print the regenerated Table 2")
    sub.add_parser("figure10", help="print the state-transition enumeration")
    sub.add_parser("protocols", help="list the implemented protocols")
    return parser


def _default_wpb(protocol: str) -> int:
    return 1 if protocol == "rudolph-segall" else 4


def _default_style(protocol: str) -> LockStyle:
    return LockStyle.CACHE_LOCK if protocol == "bitar-despain" else LockStyle.TTAS


def command_run(args: argparse.Namespace) -> int:
    wpb = args.words_per_block or _default_wpb(args.protocol)
    style = (LockStyle(args.lock_style) if args.lock_style
             else _default_style(args.protocol))
    config = SystemConfig(
        num_processors=args.processors,
        protocol=args.protocol,
        num_buses=args.buses,
        strict_verify=args.protocol != "write-through",
        wait_mode=WaitMode.WORK if args.work_while_waiting else WaitMode.SPIN,
        cache=CacheConfig(words_per_block=wpb, num_blocks=args.cache_blocks),
        seed=args.seed,
    )
    if args.trace:
        from repro.workloads.trace import load_trace

        programs = load_trace(args.trace, num_processors=args.processors)
    else:
        programs = WORKLOADS[args.workload](config, style)
    if args.dump_trace:
        from repro.workloads.trace import dump_trace

        with open(args.dump_trace, "w", encoding="utf-8") as handle:
            handle.write(dump_trace(programs))
    obs = None
    if args.metrics_out or args.timeline or args.heatmap:
        from repro.obs import Observability

        obs = Observability(interval=args.sample_interval)
    stats = run_workload(config, programs, check_interval=args.verify_every,
                         fast_forward=args.fast_forward, obs=obs)
    if obs is not None:
        _write_observability(obs, args)

    if args.json:
        print(stats.to_json())
        return 0
    rows = [[k, v] for k, v in stats.to_dict().items()]
    print(render_table(["metric", "value"], rows,
                       title=f"{args.workload} on {args.protocol} "
                             f"({args.processors} processors)"))
    locks = lock_metrics(stats)
    if locks.acquisitions:
        print(f"\nlock acquisitions       : {locks.acquisitions}")
        print(f"bus cycles/acquisition  : {locks.bus_cycles_per_acquisition:.1f}")
        print(f"failed attempts/acq     : {locks.failed_attempts_per_acquisition:.2f}")
    traffic = traffic_metrics(stats)
    print(f"bus cycles/reference    : {traffic.cycles_per_reference:.2f}")
    return 0


def _write_observability(obs, args: argparse.Namespace) -> None:
    from repro.obs import build_heatmap, write_chrome_trace, write_samples

    if args.metrics_out:
        write_samples(obs, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.timeline:
        write_chrome_trace(obs, args.timeline)
        print(f"timeline written to {args.timeline} "
              f"(load in ui.perfetto.dev)")
    if args.heatmap:
        heatmap = build_heatmap(obs)
        print()
        print(heatmap.render())
        if args.heatmap != "-":
            import json as _json

            with open(args.heatmap, "w", encoding="utf-8") as handle:
                _json.dump(heatmap.to_dict(), handle, indent=2)
            print(f"heatmap written to {args.heatmap}")


def _sweep_point(n, *, protocol: str, workload: str,
                 fast_forward: bool = False, sample_interval: int = 0):
    """One sweep point; module-level so ``--jobs`` can pickle it (the
    workload is looked up by name inside the worker process).  With a
    ``sample_interval``, the point runs observed and returns an
    :class:`~repro.analysis.sweeps.ObservedPoint` whose plain-data
    ObsResult pickles back from the worker."""
    config = SystemConfig(
        num_processors=int(n),
        protocol=protocol,
        strict_verify=protocol != "write-through",
        cache=CacheConfig(words_per_block=_default_wpb(protocol),
                          num_blocks=64),
    )
    programs = WORKLOADS[workload](config, _default_style(protocol))
    if not sample_interval:
        return run_workload(config, programs, fast_forward=fast_forward)
    from repro.analysis.sweeps import ObservedPoint
    from repro.obs import Observability

    obs = Observability(interval=sample_interval)
    stats = run_workload(config, programs, fast_forward=fast_forward,
                         obs=obs)
    return ObservedPoint(stats=stats, obs=obs.result())


def command_sweep(args: argparse.Namespace) -> int:
    import functools

    from repro.analysis.sweeps import Sweep

    run = functools.partial(
        _sweep_point,
        protocol=args.protocol,
        workload=args.workload,
        fast_forward=args.fast_forward,
        sample_interval=args.sample_interval if args.metrics_out else 0,
    )
    sweep = Sweep(
        xs=args.processors,
        run=run,
        metrics={
            "cycles": lambda s: s.cycles,
            "bus utilization": lambda s: s.bus_utilization,
            "failed lock attempts": lambda s: s.failed_lock_attempts,
        },
    )
    series = sweep.execute(jobs=args.jobs)
    if args.metrics_out:
        import os

        from repro.obs import samples_jsonl

        os.makedirs(args.metrics_out, exist_ok=True)
        for n, result in zip(args.processors, sweep.observations):
            path = os.path.join(args.metrics_out, f"point_n{n}.jsonl")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(samples_jsonl(result))
        print(f"per-point sample series written to {args.metrics_out}/")
    rows = [
        [n,
         int(series["cycles"].values[i]),
         f"{series['bus utilization'].values[i]:.0%}",
         int(series["failed lock attempts"].values[i])]
        for i, n in enumerate(args.processors)
    ]
    print(render_table(
        ["processors", "cycles", "bus utilization", "failed attempts"],
        rows,
        title=f"{args.workload} on {args.protocol}",
        align_left_first=False,
    ))
    return 0


def command_compare(args: argparse.Namespace) -> int:
    from repro import TABLE1_PROTOCOLS
    from repro.analysis.comparison import compare_protocols, render_comparison

    protocols = args.protocols or list(TABLE1_PROTOCOLS)
    rows = compare_protocols(
        protocols,
        lambda cfg, style: WORKLOADS[args.workload](cfg, style),
        num_processors=args.processors,
    )
    print(render_comparison(
        rows, title=f"{args.workload} ({args.processors} processors)"
    ))
    return 0


def command_conformance(args: argparse.Namespace) -> int:
    from repro.verify.conformance import check_conformance

    findings = check_conformance(
        args.protocol, serializing=args.protocol != "write-through"
    )
    if findings:
        for finding in findings:
            print(f"FAIL {finding}")
        return 1
    print(f"{args.protocol}: conformant "
          f"(all applicable checks passed)")
    return 0


def command_protocols(args: argparse.Namespace) -> int:
    rows = [
        [name, cls.features().citation, len(cls.states())]
        for name, cls in sorted(PROTOCOLS.items())
    ]
    print(render_table(["name", "citation", "states"], rows))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return command_run(args)
    if args.command == "sweep":
        return command_sweep(args)
    if args.command == "compare":
        return command_compare(args)
    if args.command == "conformance":
        return command_conformance(args)
    if args.command == "table1":
        print(build_table1().render())
        return 0
    if args.command == "table2":
        print(render_table2())
        return 0
    if args.command == "figure10":
        print(render_figure10())
        return 0
    if args.command == "protocols":
        return command_protocols(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
