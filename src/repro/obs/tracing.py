"""Causal span tracing: every bus transaction, stall episode, lock
wait, lock hold, and crossbar round trip becomes a *span* with
parent/cause links, so an invalidation that forces another processor's
miss -- or a lock handoff chain -- is traceable end to end.

The :class:`SpanTracer` is owned by an
:class:`~repro.obs.core.Observability` constructed with
``tracing=True`` and is fed exclusively through the ``record_*``
publication hooks.  Every hook fires on an *event* cycle (a grant,
snoop, issue, wake, or retire), never from the per-cycle or quiet-span
accounting, so the collected spans are bit-identical between the
stepped and fast-forward engines and both dispatch cores.

Span model (plain dicts, JSON-able):

``id``
    Creation index; links always point at smaller ids.
``kind``
    One of :data:`SPAN_KINDS` -- ``txn`` (one bus transaction,
    grant to release), ``episode`` (one contiguous stall stretch of a
    processor: post/wake -> arbitration -> transfer -> collect),
    ``wait`` (a lock wait window, spin or sleep), ``hold`` (a lock
    hold), ``crossbar`` (a memory-unit RMW round trip), and ``mark``
    (instant annotations such as a locked-victim spill).
``track``
    ``bus{i}`` or ``cpu{pid}`` -- the same track names the timeline
    slices use, so the Perfetto export lines spans up with them.
``start`` / ``dur``
    Cycles.  An episode's duration is exactly its contribution to the
    processor's stall cycles (arbitration + transfer).
``parent``
    Containment/causality upward: a txn's parent is the episode that
    posted it; an unlock broadcast's parent is the releaser's hold; a
    hold's parent is the episode that completed the acquisition.
``cause``
    Cross-processor causality: the txn whose snoop invalidated the
    block (for the forced refetch) or the unlock broadcast that woke
    the waiter (for the post-wake retry).

The tracer also keeps the per-processor tallies
:mod:`repro.obs.attribution` turns into the exhaustive cycle buckets;
see there for the accounting contract.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.registry import MetricRegistry

#: Bus operations that complete detached from the issuing cache's
#: pending access (``take_bus_transaction`` pops them ahead of it); a
#: grant for one of these must not close the requester's open episode.
DETACHED_OPS = frozenset({
    "UNLOCK_BROADCAST", "FLUSH_BLOCK", "MEMORY_LOCK_WRITE",
})

#: Every span ``kind`` the tracer emits.
SPAN_KINDS = ("txn", "episode", "wait", "hold", "crossbar", "mark")


@dataclass(slots=True)
class _Tally:
    """Per-processor raw cycle tallies, accumulated at span close."""

    out_arb: int = 0          # arbitration, out-of-window, not inval-caused
    out_transfer: int = 0     # transfer, out-of-window, not inval-caused
    inval_wait: int = 0       # arb+transfer of inval-forced refetch episodes
    win_stall: int = 0        # arb+transfer of episodes posted in a window
    win_cycles: int = 0       # total lock-wait window cycles
    crossbar_out: int = 0     # crossbar stall outside any window
    crossbar_in: int = 0      # crossbar stall inside a window
    hits_out: int = 0         # local-hit issue cycles outside any window
    episodes: int = 0
    aborted: int = 0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class SpanTracer:
    """Collects causal spans and attribution tallies for one run."""

    def __init__(self, registry: "MetricRegistry | None" = None) -> None:
        self.spans: list[dict] = []
        self.tallies: dict[int, _Tally] = {}
        #: block -> ordered acquisition chain [{pid, acquired, hold}].
        self.handoffs: dict[int, list[dict]] = {}
        #: block -> total cycles processors spent waiting on it.
        self.block_waits: dict[int, int] = {}
        self.end_cycle: int | None = None

        self._open_txn: dict | None = None
        self._episodes: dict[int, dict] = {}        # requester -> state
        self._windows: dict[int, dict] = {}         # pid -> open window
        self._last_collect: dict[int, int] = {}     # pid -> last collect cycle
        self._last_spin: dict[int, int] = {}        # pid -> last spin-step cycle
        self._last_episode: dict[int, int] = {}     # pid -> last closed span id
        self._pending_inval: dict[tuple, int] = {}  # (cache, block) -> txn id
        self._last_hold: dict[int, int] = {}        # block -> hold span id
        self._unlock_origin: dict[int, int] = {}    # block -> releasing cache
        self._acquires: dict[tuple, dict] = {}      # (pid, block) -> info

        self._span_hist = None
        self._bucket_hist = None
        if registry is not None:
            self._span_hist = registry.histogram(
                "span_cycles", "span duration by kind (cycles)",
                label_names=("kind",))
            self._bucket_hist = registry.histogram(
                "bucket_wait_cycles",
                "per-episode latency by attribution bucket (cycles)",
                label_names=("bucket",))

    # -- plumbing ----------------------------------------------------------

    def _tally(self, pid: int) -> _Tally:
        tally = self.tallies.get(pid)
        if tally is None:
            tally = self.tallies[pid] = _Tally()
        return tally

    def _span(self, kind: str, name: str, track: str, start: int,
              dur: int = 0, parent: int | None = None,
              cause: int | None = None, **args) -> dict:
        span = {
            "id": len(self.spans), "kind": kind, "name": name,
            "track": track, "start": start, "dur": dur,
            "parent": parent, "cause": cause, "args": args,
        }
        self.spans.append(span)
        return span

    def _observe(self, span: dict) -> None:
        if self._span_hist is not None:
            self._span_hist.observe(span["dur"], kind=span["kind"])

    def _observe_bucket(self, bucket: str, cycles: int) -> None:
        if self._bucket_hist is not None and cycles > 0:
            self._bucket_hist.observe(cycles, bucket=bucket)

    # -- bus transactions --------------------------------------------------

    def txn_begin(self, cycle: int, op: str, block: int, requester: int,
                  bus: int = 0) -> None:
        parent = None
        if op == "UNLOCK_BROADCAST":
            parent = self._last_hold.get(block)
        elif op not in DETACHED_OPS:
            episode = self._episodes.get(requester)
            if episode is not None:
                parent = episode["span"]["id"]
        span = self._span("txn", op, f"bus{bus}", cycle, parent=parent,
                          block=block, requester=requester)
        if op == "UNLOCK_BROADCAST":
            origin = self._unlock_origin.pop(block, None)
            if origin is not None:
                span["args"]["origin"] = origin
        self._open_txn = span

    def txn_end(self, cycle: int, duration: int, op: str, block: int,
                requester: int, bus: int = 0,
                outcome: str | None = None) -> None:
        span = self._open_txn
        self._open_txn = None
        if span is not None:
            span["dur"] = duration
            span["args"]["outcome"] = outcome
            self._observe(span)
        if op in DETACHED_OPS:
            return
        episode = self._episodes.get(requester)
        if episode is None:
            return
        if outcome == "REBUS":
            # Multi-phase transaction: the transfer so far is banked and
            # arbitration resumes once this phase's occupancy expires --
            # resuming from the *release*, not the grant, or the phase's
            # transfer would be double-counted.
            episode["arb"] += cycle - episode["arb_since"]
            episode["transfer"] += duration
            episode["arb_since"] = cycle + duration
            episode["phases"] += 1
            return
        episode["arb"] += cycle - episode["arb_since"]
        if outcome == "WAIT_LOCK":
            # The lock was held: the requester parks (arbitration only;
            # the wait window opened at this same grant).
            self._close_episode(requester, episode, cycle)
        else:  # DONE: occupancy runs [cycle, cycle+duration), collect after
            episode["transfer"] += duration
            self._close_episode(requester, episode, cycle + duration)
            self._last_collect[requester] = cycle + duration

    def _close_episode(self, pid: int, episode: dict, end: int,
                       aborted: bool = False, truncated: bool = False,
                       rearmed: bool = False) -> None:
        span = episode["span"]
        span["dur"] = max(0, end - span["start"])
        arb, transfer = episode["arb"], episode["transfer"]
        in_window, inval = episode["in_window"], episode["inval"]
        span["args"].update(arb=arb, transfer=transfer,
                            phases=episode["phases"])
        if aborted:
            span["args"]["aborted"] = True
        if truncated:
            span["args"]["truncated"] = True
        if rearmed:
            span["args"]["rearmed"] = True
        if in_window:
            span["args"]["in_window"] = True

        tally = self._tally(pid)
        tally.episodes += 1
        if aborted:
            tally.aborted += 1
        if in_window:
            tally.win_stall += arb + transfer
            self._observe_bucket("lock_spin", arb + transfer)
        elif inval:
            tally.inval_wait += arb + transfer
            self._observe_bucket("inval_refetch", arb + transfer)
        else:
            tally.out_arb += arb
            tally.out_transfer += transfer
            self._observe_bucket("bus_arb_wait", arb)
            self._observe_bucket("miss_wait", transfer)
        self._observe(span)
        self._last_episode[pid] = span["id"]
        self._episodes.pop(pid, None)

    # -- processor requests ------------------------------------------------

    def request_posted(self, cache: int, op_kind: str, block: int,
                       cycle: int) -> None:
        stale = self._episodes.get(cache)
        if stale is not None:  # defensive: never two open episodes per pid
            stale["arb"] += max(0, cycle - stale["arb_since"])
            self._close_episode(cache, stale, cycle, truncated=True)
        # An abort-retry posts on the aborted episode's collect cycle, and
        # a spin iteration posts on its deferred-result cycle: both are
        # compute cycles, so arbitration starts on the next one.
        posted_on_compute = (self._last_collect.get(cache) == cycle
                             or self._last_spin.get(cache) == cycle)
        arb_since = cycle + 1 if posted_on_compute else cycle
        cause = self._pending_inval.pop((cache, block), None)
        span = self._span("episode", f"{op_kind} {block}", f"cpu{cache}",
                          arb_since, cause=cause, block=block, op=op_kind)
        self._episodes[cache] = {
            "span": span, "arb_since": arb_since, "arb": 0, "transfer": 0,
            "phases": 1, "in_window": cache in self._windows,
            "inval": cause is not None,
        }

    def request_aborted(self, cache: int, cycle: int) -> None:
        episode = self._episodes.get(cache)
        if episode is None:
            return
        episode["arb"] += cycle - episode["arb_since"]
        span = episode["span"]
        if span["cause"] is None and self._open_txn is not None:
            span["cause"] = self._open_txn["id"]
        self._close_episode(cache, episode, cycle, aborted=True)
        self._last_collect[cache] = cycle

    def spin_step(self, pid: int, cycle: int) -> None:
        """A deferred spin result was processed this cycle (a compute
        cycle); any access it chains starts stalling next cycle."""
        self._last_spin[pid] = cycle

    def local_hit(self, pid: int, cycle: int) -> None:
        # In-window hits are spin iterations; they land in the window's
        # ``win_compute`` remainder (-> lock_spin), not the hit bucket.
        if pid not in self._windows:
            self._tally(pid).hits_out += 1

    def crossbar(self, pid: int, start: int, until: int) -> None:
        # The issue cycle always stalls, and collection happens on the
        # first tick at or after ``until`` -- so the stall contribution
        # is at least one cycle even for an instant round trip.
        stall = max(until - start, 1)
        span = self._span("crossbar", "crossbar rmw", f"cpu{pid}", start,
                          dur=stall)
        tally = self._tally(pid)
        if pid in self._windows:
            tally.crossbar_in += stall
        else:
            tally.crossbar_out += stall
        self._observe(span)
        self._observe_bucket("miss_wait" if pid not in self._windows
                             else "lock_spin", stall)

    # -- lock waits, wakes, holds ------------------------------------------

    def wait_start(self, pid: int, block: int, cycle: int) -> None:
        # Re-arms (lost post-unlock arbitration) keep the original start,
        # mirroring Observability._open_waits.
        if pid in self._windows:
            return
        span = self._span("wait", f"wait {block}", f"cpu{pid}", cycle,
                          block=block)
        self._windows[pid] = {"span": span, "block": block, "start": cycle}

    def wait_wakeup(self, cache: int, block: int, cycle: int) -> None:
        if cache in self._episodes:
            return
        cause = self._open_txn["id"] if self._open_txn is not None else None
        span = self._span("episode", f"retry {block}", f"cpu{cache}", cycle,
                          cause=cause, block=block, op="RETRY")
        self._episodes[cache] = {
            "span": span, "arb_since": cycle, "arb": 0, "transfer": 0,
            "phases": 1, "in_window": cache in self._windows, "inval": False,
        }

    def wait_rearmed(self, cache: int, cycle: int) -> None:
        episode = self._episodes.get(cache)
        if episode is None:
            return
        episode["arb"] += cycle - episode["arb_since"]
        self._close_episode(cache, episode, cycle, rearmed=True)

    def _close_window(self, pid: int, window: dict, cycle: int,
                      outcome: str) -> int:
        span = window["span"]
        span["dur"] = cycle - span["start"]
        span["args"]["outcome"] = outcome
        block = window["block"]
        self._tally(pid).win_cycles += span["dur"]
        self.block_waits[block] = (self.block_waits.get(block, 0)
                                   + span["dur"])
        self._observe(span)
        return span["id"]

    def lock_acquired(self, pid: int, block: int, cycle: int) -> None:
        window = self._windows.pop(pid, None)
        wait_id = None
        if window is not None:
            wait_id = self._close_window(pid, window, cycle, "acquired")
        chain = self.handoffs.setdefault(block, [])
        chain.append({"pid": pid, "acquired": cycle, "hold": None})
        self._acquires[(pid, block)] = {
            "episode": self._last_episode.get(pid), "wait": wait_id,
            "index": len(chain) - 1,
        }

    def lock_released(self, pid: int, block: int, since: int,
                      cycle: int) -> None:
        info = self._acquires.pop((pid, block), None)
        span = self._span("hold", f"hold {block}", f"cpu{pid}", since,
                          dur=cycle - since, block=block)
        if info is not None:
            span["parent"] = info["episode"]
            if info["wait"] is not None:
                span["cause"] = info["wait"]
            self.handoffs[block][info["index"]]["hold"] = cycle - since
        self._last_hold[block] = span["id"]
        self._observe(span)

    def wait_cancelled(self, pid: int, cycle: int) -> None:
        window = self._windows.pop(pid, None)
        if window is not None:
            self._close_window(pid, window, cycle, "cancelled")

    def unlock_queued(self, cache: int, block: int, cycle: int) -> None:
        self._unlock_origin[block] = cache

    def lock_spill(self, cache: int, block: int, cycle: int) -> None:
        self._span("mark", f"lock spill {block}", f"cpu{cache}", cycle,
                   block=block)

    # -- cross-processor causes --------------------------------------------

    def invalidation(self, block: int, cache: int) -> None:
        # Remember which transaction killed the copy; the victim's next
        # request for this block is an invalidation-forced refetch.
        if self._open_txn is not None:
            self._pending_inval[(cache, block)] = self._open_txn["id"]

    # -- end of run --------------------------------------------------------

    def finalize(self, end_cycle: int) -> None:
        """Close anything still open (marked truncated) at run end."""
        for pid in sorted(self._episodes):
            episode = self._episodes[pid]
            episode["arb"] += max(0, end_cycle - episode["arb_since"])
            self._close_episode(pid, episode, end_cycle, truncated=True)
        for pid in sorted(self._windows):
            window = self._windows.pop(pid)
            self._close_window(pid, window, end_cycle, "truncated")
        self._open_txn = None
        self.end_cycle = end_cycle

    def summary(self) -> dict:
        """Plain-data tallies for :mod:`repro.obs.attribution`."""
        return {
            "tallies": {pid: tally.to_dict()
                        for pid, tally in sorted(self.tallies.items())},
            "handoffs": {block: list(chain)
                         for block, chain in sorted(self.handoffs.items())},
            "block_waits": dict(sorted(self.block_waits.items())),
            "end_cycle": self.end_cycle,
        }
