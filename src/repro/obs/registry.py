"""Label-aware metric registry.

Components publish counters, gauges, and histograms here; the exporters
and heatmap passes read the registry back out as plain data.  The design
follows the Prometheus data model in miniature: a metric has a name, a
help string, and a fixed tuple of label *names*; every observation
carries one value per label name, and the registry keys the stored
values by the label-value tuple.

Everything a snapshot returns is plain JSON-serializable (and therefore
picklable) data, so registries survive the ``ProcessPoolExecutor`` sweep
path by being reduced to their snapshots in the worker.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable

#: Default histogram bucket upper bounds (cycles); chosen to resolve the
#: bus occupancy and lock hold/wait durations the timing model produces.
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

LabelKey = tuple


class _Metric:
    """Shared plumbing: name, help, and label-key construction."""

    kind = "abstract"
    __slots__ = ("name", "help", "label_names")

    def __init__(self, name: str, help: str = "",
                 label_names: Iterable[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)

    def _key(self, labels: dict) -> LabelKey:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {sorted(labels)}"
            )
        try:
            return tuple(labels[n] for n in self.label_names)
        except KeyError as exc:
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {sorted(labels)}"
            ) from exc

    def _labels_of(self, key: LabelKey) -> dict:
        return dict(zip(self.label_names, key))


class Counter(_Metric):
    """A monotonically increasing value per label set."""

    kind = "counter"
    __slots__ = ("values",)

    def __init__(self, name: str, help: str = "",
                 label_names: Iterable[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self.values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        self.values[key] = self.values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self.values.get(self._key(labels), 0)

    @property
    def total(self) -> float:
        return sum(self.values.values())

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "values": [
                {"labels": self._labels_of(key), "value": value}
                for key, value in sorted(self.values.items(),
                                         key=lambda kv: repr(kv[0]))
            ],
        }


class Gauge(Counter):
    """A value that can move both ways (waiter counts, queue depths)."""

    kind = "gauge"
    __slots__ = ()

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        self.values[key] = self.values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: Any) -> None:
        self.values[self._key(labels)] = value


class Histogram(_Metric):
    """Bucketed distribution per label set (cumulative bucket counts)."""

    kind = "histogram"
    __slots__ = ("buckets", "_series")

    def __init__(self, name: str, help: str = "",
                 label_names: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, label_names)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name} needs buckets")
        self._series: dict[LabelKey, list] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            # [bucket counts..., +Inf count, sum, count]
            series = self._series[key] = [0] * (len(self.buckets) + 1) + [0.0, 0]
        index = bisect_left(self.buckets, value)
        series[index] += 1
        series[-2] += value
        series[-1] += 1

    def count(self, **labels: Any) -> int:
        series = self._series.get(self._key(labels))
        return series[-1] if series else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(self._key(labels))
        return series[-2] if series else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "buckets": list(self.buckets),
            "values": [
                {
                    "labels": self._labels_of(key),
                    "bucket_counts": list(series[:-2]),
                    "sum": series[-2],
                    "count": series[-1],
                }
                for key, series in sorted(self._series.items(),
                                          key=lambda kv: repr(kv[0]))
            ],
        }


class MetricRegistry:
    """The collection every component publishes into.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for an
    existing name returns the existing metric (label names must match),
    so independent components can share a metric safely.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       label_names: Iterable[str], **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or (
                existing.label_names != tuple(label_names)
            ):
                raise ValueError(
                    f"metric {name} already registered with a different "
                    f"type or label set"
                )
            return existing
        metric = cls(name, help, label_names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                label_names: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "",
              label_names: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(self, name: str, help: str = "",
                  label_names: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, label_names,
                                   buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def merge_counter_snapshot(self, name: str, snapshot: dict,
                               help: str = "") -> Counter:
        """Fold a counter snapshot (from :meth:`Counter.snapshot`) into
        this registry, summing values label-set by label-set.

        This is how per-worker counters cross a process boundary: the
        worker reduces its registry to plain data, and the parent merges
        the snapshots back -- e.g. the sweep executor folding a retried
        point's counters into the sweep-level registry.
        """
        if snapshot.get("kind") != "counter":
            raise ValueError(
                f"metric {name}: can only merge counter snapshots, got "
                f"{snapshot.get('kind')!r}"
            )
        counter = self.counter(name, help or snapshot.get("help", ""),
                               tuple(snapshot.get("label_names", ())))
        for entry in snapshot.get("values", ()):
            counter.inc(entry["value"], **entry["labels"])
        return counter

    def merge_histogram_snapshot(self, name: str, snapshot: dict,
                                 help: str = "") -> Histogram:
        """Fold a histogram snapshot (from :meth:`Histogram.snapshot`)
        into this registry, summing bucket counts label-set by label-set.

        The counterpart of :meth:`merge_counter_snapshot` for the sweep
        process boundary; bucket boundaries must match any existing
        histogram of the same name.
        """
        if snapshot.get("kind") != "histogram":
            raise ValueError(
                f"metric {name}: can only merge histogram snapshots, got "
                f"{snapshot.get('kind')!r}"
            )
        buckets = tuple(sorted(snapshot.get("buckets", ())))
        histogram = self.histogram(name, help or snapshot.get("help", ""),
                                   tuple(snapshot.get("label_names", ())),
                                   buckets=buckets)
        if histogram.buckets != buckets:
            raise ValueError(
                f"metric {name}: bucket boundaries {buckets} do not match "
                f"existing {histogram.buckets}"
            )
        for entry in snapshot.get("values", ()):
            counts = entry["bucket_counts"]
            if len(counts) != len(histogram.buckets) + 1:
                raise ValueError(
                    f"metric {name}: snapshot has {len(counts)} bucket "
                    f"counts, expected {len(histogram.buckets) + 1}"
                )
            key = histogram._key(entry["labels"])
            series = histogram._series.get(key)
            if series is None:
                series = histogram._series[key] = (
                    [0] * (len(histogram.buckets) + 1) + [0.0, 0])
            for index, count in enumerate(counts):
                series[index] += count
            series[-2] += entry["sum"]
            series[-1] += entry["count"]
        return histogram

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a full registry snapshot (from :meth:`snapshot`) into
        this registry.

        Counters and histograms merge additively.  Gauges are skipped:
        they are point-in-time readings, and summing them across workers
        would fabricate a queue depth no single run ever saw.
        """
        for name, metric in sorted(snapshot.items()):
            kind = metric.get("kind")
            if kind == "counter":
                self.merge_counter_snapshot(name, metric)
            elif kind == "histogram":
                self.merge_histogram_snapshot(name, metric)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """The whole registry as plain, picklable, JSON-able data."""
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}
