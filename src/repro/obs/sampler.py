"""Time-resolved interval sampling.

The :class:`IntervalSampler` turns the simulator's cumulative counters
into a time series: one row per ``interval`` simulated cycles, plus a
final partial row at run end.  It is driven by the engine's phase
callback (:meth:`on_advance`, called whenever ``stats.cycles`` changes,
once per cycle under the stepped engine and once per bulk skip under
fast-forward) and reads event-derived gauges maintained by the
:class:`~repro.obs.core.Observability` layer from the ``TraceLog``
listener hook and the component publication hooks.

Fast-forward equivalence
------------------------

The series is bit-identical between the stepped and event-skip engines
because every sampled quantity changes *only on event cycles* -- cycles
both engines execute with an ordinary ``step()``:

* bus counters (busy cycles, transaction mix) are recorded in full at
  grant time;
* cache/lock event counters and the waiter/queue-depth gauges move only
  when a grant, snoop, issue, retire, or wake runs;
* the only quantities that change during a quiet span are ``cycles``
  itself and the per-processor accounting buckets, and the sampler
  deliberately excludes the latter.

A boundary crossed inside a quiet span therefore sees exactly the
counter values the stepped engine would have seen on that cycle: the
stepped engine fills the span cycle-by-cycle without touching any
sampled counter, and the fast-forward engine fills all boundaries in
``(from, to]`` in one call before executing the span-ending event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.sim.stats import SimStats


class IntervalSampler:
    """Emits one sample row per interval boundary of simulated time."""

    def __init__(self, interval: int = 100) -> None:
        if interval < 1:
            raise ValueError("sample interval must be >= 1 cycle")
        self.interval = interval
        self.samples: list[dict] = []
        self._stats: "SimStats | None" = None
        self._gauges: Callable[[], dict] | None = None
        self.next_boundary = interval
        self._last_emitted = 0
        self._prev_cycle = 0
        self._prev_busy = 0
        self._prev_txns = 0

    def attach(self, stats: "SimStats", gauges: Callable[[], dict]) -> None:
        self._stats = stats
        self._gauges = gauges

    def on_advance(self, cycles: int) -> None:
        """Engine phase callback: ``stats.cycles`` just became ``cycles``.

        Emits a row for every interval boundary newly reached or crossed;
        a bulk skip lands every spanned boundary here in one call, with
        identical (unchanged) counters for each -- the quiet-span fill.
        """
        while self.next_boundary <= cycles:
            self._emit(self.next_boundary)
            self.next_boundary += self.interval

    def finalize(self, cycles: int) -> None:
        """Emit the trailing partial interval at run end (idempotent)."""
        if cycles > self._last_emitted:
            self._emit(cycles)

    # -- internals ---------------------------------------------------------

    def _emit(self, cycle: int) -> None:
        stats = self._stats
        assert stats is not None and self._gauges is not None, (
            "sampler used before attach()"
        )
        span = cycle - self._prev_cycle
        busy = stats.bus_busy_cycles
        txns = stats.total_transactions
        gauges = self._gauges()
        self.samples.append({
            "cycle": cycle,
            "bus_busy_cycles": busy,
            "interval_bus_utilization": (
                (busy - self._prev_busy) / span if span else 0.0
            ),
            "transactions": txns,
            "interval_transactions": txns - self._prev_txns,
            "txn_mix": dict(stats.txn_counts),
            "invalidations": stats.invalidations_received,
            "updates": stats.updates_received,
            "c2c_transfers": stats.cache_to_cache_transfers,
            "memory_fetches": stats.memory_fetches,
            "flushes": stats.flushes,
            "lock_acquisitions": stats.total_lock_acquisitions,
            "failed_lock_attempts": stats.failed_lock_attempts,
            "unlock_broadcasts": stats.unlock_broadcasts,
            "lock_waiters": gauges["lock_waiters"],
            "lock_queue_depth": gauges["lock_queue_depth"],
            "events": gauges["events"],
        })
        self._last_emitted = cycle
        self._prev_cycle = cycle
        self._prev_busy = busy
        self._prev_txns = txns
