"""Exhaustive cycle attribution: every simulated cycle of every
processor lands in exactly one bucket, and the buckets are asserted to
sum to the processor's total cycles.

The partition is derived from two independent, already bit-identical
sources -- the engine's :class:`~repro.sim.stats.ProcessorStats`
counters and the :class:`~repro.obs.tracing.SpanTracer` tallies (both
are event-cycle-driven) -- so the report is itself bit-identical
between the stepped and fast-forward engines and both dispatch cores.

Buckets (:data:`BUCKETS`):

``compute``
    Cycles doing program work: compute ops, collect cycles, and any
    useful work done while waiting (``WaitMode.WORK``).
``cache_hit``
    Issue cycles satisfied locally (one cycle each), outside lock
    waits.
``miss_wait``
    Bus occupancy (transfer) stalls plus memory-unit crossbar round
    trips, outside lock waits, not invalidation-forced.
``bus_arb_wait``
    Arbitration stalls (post to grant), outside lock waits, not
    invalidation-forced.
``inval_refetch``
    Arbitration + transfer of refetches forced by a remote
    invalidation.
``lock_spin``
    Lock-wait window cycles actively burned on the lock: spin-test
    issues and their bus stalls, post-wake retry stalls.
``lock_sleep``
    Lock-wait window cycles parked on the cache's wait register
    (``wait_idle_cycles``).
``barrier_idle``
    Cycles after the processor finished its program
    (``done_cycles``).

Accounting identities (checked by :meth:`AttributionReport.validate`):

* every episode's arbitration + transfer, plus crossbar stalls, sum
  exactly to ``stall_cycles``;
* window cycles split exactly into sleep + work + in-window stall +
  in-window compute;
* the eight buckets sum exactly to ``total_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.schema import stamp

if TYPE_CHECKING:
    from repro.obs.tracing import SpanTracer
    from repro.sim.stats import SimStats

#: The exhaustive cycle buckets, in render order.
BUCKETS = (
    "compute", "cache_hit", "miss_wait", "bus_arb_wait",
    "inval_refetch", "lock_spin", "lock_sleep", "barrier_idle",
)


class AttributionError(ValueError):
    """The per-processor accounting failed an exactness check."""


@dataclass
class AttributionReport:
    """Per-processor bucket accounting plus the causal lock summary."""

    cycles: int
    per_pid: list[dict]
    handoffs: dict = field(default_factory=dict)
    block_waits: dict = field(default_factory=dict)
    protocol: str | None = None

    @property
    def totals(self) -> dict:
        totals = {bucket: 0 for bucket in BUCKETS}
        for entry in self.per_pid:
            for bucket in BUCKETS:
                totals[bucket] += entry["buckets"][bucket]
        return totals

    @property
    def contended_block(self) -> int | None:
        """The block processors spent the most wait cycles on."""
        if not self.block_waits:
            return None
        return max(sorted(self.block_waits), key=self.block_waits.get)

    def handoff_chain(self, block: int | None = None) -> list[dict]:
        """Ordered acquisitions of ``block`` (default: the contended
        one): who got the lock when, and for how long."""
        if block is None:
            block = self.contended_block
        return list(self.handoffs.get(block, ()))

    def validate(self) -> None:
        """Raise :class:`AttributionError` unless every processor's
        buckets are non-negative and sum exactly to its cycles."""
        for entry in self.per_pid:
            buckets = entry["buckets"]
            for bucket in BUCKETS:
                if buckets[bucket] < 0:
                    raise AttributionError(
                        f"cpu{entry['pid']}: negative {bucket} bucket "
                        f"({buckets[bucket]})")
            total = sum(buckets.values())
            if total != entry["total"]:
                raise AttributionError(
                    f"cpu{entry['pid']}: buckets sum to {total}, "
                    f"expected {entry['total']} cycles")

    def to_dict(self) -> dict:
        return stamp({
            "kind": "attribution-report",
            "protocol": self.protocol,
            "cycles": self.cycles,
            "per_pid": self.per_pid,
            "totals": self.totals,
            "contended_block": self.contended_block,
            "handoffs": {str(block): chain
                         for block, chain in sorted(self.handoffs.items())},
            "block_waits": {str(block): cycles for block, cycles
                            in sorted(self.block_waits.items())},
        })

    @classmethod
    def from_dict(cls, payload: dict) -> "AttributionReport":
        """Rebuild a report from its :meth:`to_dict` payload (block keys
        come back as strings from JSON; restore them to ints)."""
        return cls(
            cycles=payload["cycles"],
            per_pid=[dict(entry) for entry in payload["per_pid"]],
            handoffs={int(block): list(chain) for block, chain
                      in payload.get("handoffs", {}).items()},
            block_waits={int(block): int(cycles) for block, cycles
                         in payload.get("block_waits", {}).items()},
            protocol=payload.get("protocol"),
        )

    def render(self) -> str:
        """A fixed-width text table plus the lock contention story."""
        lines = []
        header = "cpu".ljust(6) + "".join(b.rjust(14) for b in BUCKETS)
        lines.append(header)
        lines.append("-" * len(header))
        for entry in self.per_pid:
            buckets = entry["buckets"]
            lines.append(
                f"cpu{entry['pid']}".ljust(6)
                + "".join(str(buckets[b]).rjust(14) for b in BUCKETS))
        totals = self.totals
        lines.append("all".ljust(6)
                     + "".join(str(totals[b]).rjust(14) for b in BUCKETS))
        block = self.contended_block
        if block is not None:
            lines.append("")
            lines.append(f"contended lock block: {block} "
                         f"({self.block_waits.get(block, 0)} wait cycles)")
            chain = self.handoff_chain(block)
            if chain:
                hops = " -> ".join(
                    f"cpu{hop['pid']}@{hop['acquired']}"
                    + (f"({hop['hold']}c)" if hop["hold"] is not None else "")
                    for hop in chain)
                lines.append(f"handoff chain: {hops}")
        return "\n".join(lines)


def compute_attribution(tracer: "SpanTracer", stats: "SimStats",
                        protocol: str | None = None,
                        strict: bool = True) -> AttributionReport:
    """Turn one traced run into an :class:`AttributionReport`.

    ``strict`` (the default) also checks the intermediate identities --
    episode stalls matching ``stall_cycles`` exactly and the window
    decomposition staying non-negative -- not just the final sum.
    """
    from repro.obs.tracing import _Tally

    per_pid = []
    for pid in sorted(stats.processors):
        pstats = stats.processors[pid]
        tally = tracer.tallies.get(pid) or _Tally()

        stall_accounted = (tally.out_arb + tally.out_transfer
                           + tally.inval_wait + tally.win_stall
                           + tally.crossbar_out + tally.crossbar_in)
        if strict and stall_accounted != pstats.stall_cycles:
            raise AttributionError(
                f"cpu{pid}: episodes account for {stall_accounted} stall "
                f"cycles, engine counted {pstats.stall_cycles}")

        win = tally.win_cycles
        win_stall = tally.win_stall + tally.crossbar_in
        win_compute = (win - pstats.wait_idle_cycles
                       - pstats.wait_work_cycles - win_stall)
        if strict and win_compute < 0:
            raise AttributionError(
                f"cpu{pid}: window decomposition negative "
                f"(win={win}, idle={pstats.wait_idle_cycles}, "
                f"work={pstats.wait_work_cycles}, stall={win_stall})")

        buckets = {
            "compute": (pstats.compute_cycles + pstats.wait_work_cycles
                        - tally.hits_out - win_compute),
            "cache_hit": tally.hits_out,
            "miss_wait": tally.out_transfer + tally.crossbar_out,
            "bus_arb_wait": tally.out_arb,
            "inval_refetch": tally.inval_wait,
            "lock_spin": (win - pstats.wait_idle_cycles
                          - pstats.wait_work_cycles),
            "lock_sleep": pstats.wait_idle_cycles,
            "barrier_idle": pstats.done_cycles,
        }
        per_pid.append({
            "pid": pid,
            "total": pstats.total_cycles,
            "buckets": buckets,
            "episodes": tally.episodes,
            "aborted": tally.aborted,
        })

    report = AttributionReport(
        cycles=stats.cycles,
        per_pid=per_pid,
        handoffs={block: list(chain)
                  for block, chain in sorted(tracer.handoffs.items())},
        block_waits=dict(sorted(tracer.block_waits.items())),
        protocol=protocol,
    )
    report.validate()
    return report


# -- critical path over the span DAG --------------------------------------

def critical_path(spans: list[dict]) -> dict:
    """The heaviest chain of causally linked spans.

    Links always point backward (``parent``/``cause`` ids are smaller
    than the span's own id), so a single forward pass computes, for
    every span, the maximum accumulated duration of any chain ending at
    it; the result is the chain with the largest total, root first.
    """
    if not spans:
        return {"cycles": 0, "spans": []}
    best = [0] * len(spans)
    prev: list[int | None] = [None] * len(spans)
    for span in spans:
        i = span["id"]
        base = 0
        link = None
        for key in ("parent", "cause"):
            j = span.get(key)
            if j is not None and best[j] > base:
                base = best[j]
                link = j
        best[i] = base + max(span["dur"], 0)
        prev[i] = link
    end = max(range(len(spans)), key=best.__getitem__)
    chain = []
    cursor: int | None = end
    while cursor is not None:
        chain.append(spans[cursor])
        cursor = prev[cursor]
    chain.reverse()
    return {
        "cycles": best[end],
        "spans": [
            {"id": s["id"], "kind": s["kind"], "name": s["name"],
             "track": s["track"], "start": s["start"], "dur": s["dur"]}
            for s in chain
        ],
    }


def render_critical_path(path: dict) -> str:
    lines = [f"critical path: {path['cycles']} cycles, "
             f"{len(path['spans'])} spans"]
    for s in path["spans"]:
        lines.append(f"  {s['track']:>6}  {s['start']:>8}  +{s['dur']:<6} "
                     f"{s['kind']}: {s['name']}")
    return "\n".join(lines)


# -- protocol comparison ---------------------------------------------------

def compare_attributions(reports: "dict[str, AttributionReport]") -> dict:
    """A protocol-comparison payload: per-bucket cycle totals and
    shares side by side, the causal complement to Table 1."""
    entries = {}
    for name in sorted(reports):
        report = reports[name]
        totals = report.totals
        grand = sum(totals.values()) or 1
        entries[name] = {
            "cycles": report.cycles,
            "totals": totals,
            "shares": {bucket: totals[bucket] / grand for bucket in BUCKETS},
            "contended_block": report.contended_block,
        }
    return stamp({"kind": "attribution-comparison", "protocols": entries})


def render_comparison(comparison: dict) -> str:
    protocols = comparison["protocols"]
    width = max((len(name) for name in protocols), default=8) + 2
    lines = [" " * width + "".join(b.rjust(14) for b in BUCKETS)
             + "cycles".rjust(12)]
    for name in sorted(protocols):
        entry = protocols[name]
        lines.append(
            name.ljust(width)
            + "".join(f"{entry['shares'][b]:.1%}".rjust(14) for b in BUCKETS)
            + str(entry["cycles"]).rjust(12))
    return "\n".join(lines)
