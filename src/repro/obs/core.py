"""The observability layer: wiring, publication hooks, and results.

One :class:`Observability` instance rides along one simulation run.  The
:class:`~repro.sim.engine.Simulator` binds it to the run's ``TraceLog``
(the sampler's event feed) and its ``SimStats``, and hands it to the
bus, caches, and processors, which publish into it through the
``record_*`` hooks -- each call site guarded by ``if obs.active:`` so
that with observability disabled (the shared :data:`NULL_OBS` null
object) the hot path costs exactly one attribute check, mirroring the
``NULL_TRACE`` pattern.

Outputs are collected into an :class:`ObsResult`, a plain-data bundle
(picklable, JSON-able) of the interval sample series, the metric
registry snapshot, and the timeline slices -- the input to the heatmap
and exporter passes in :mod:`repro.obs.heatmap` / :mod:`repro.obs.export`.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.registry import MetricRegistry
from repro.obs.sampler import IntervalSampler

if TYPE_CHECKING:
    from repro.sim.events import TraceEvent, TraceLog
    from repro.sim.stats import SimStats


@dataclass
class ObsResult:
    """Everything one observed run produced, as plain data."""

    interval: int
    cycles: int
    samples: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    slices: list[dict] = field(default_factory=list)
    #: Causal spans (``tracing=True`` runs only; see repro.obs.tracing).
    spans: list[dict] = field(default_factory=list)
    #: Reduced attribution report dict (``tracing=True`` runs only).
    attribution: dict | None = None

    def to_dict(self) -> dict:
        return {
            "interval": self.interval,
            "cycles": self.cycles,
            "samples": self.samples,
            "metrics": self.metrics,
            "slices": self.slices,
            "spans": self.spans,
            "attribution": self.attribution,
        }


class NullObservability:
    """The disabled layer: ``active`` is False and every hook is a no-op.

    Shared across simulators (like ``NULL_TRACE``), hence it refuses to
    be bound to a run.
    """

    active = False
    next_advance = 0

    def bind(self, trace: "TraceLog", stats: "SimStats") -> None:
        raise RuntimeError(
            "cannot bind the shared null observability; construct the "
            "simulator with obs=Observability(...)"
        )

    def on_advance(self, cycles: int) -> None:
        return None

    def on_run_end(self, cycles: int) -> None:
        return None

    def record_bus_txn(self, cycle: int, duration: int, op: str,
                       block: int, requester: int, bus: int = 0,
                       *, outcome: str | None = None) -> None:
        return None

    def record_txn_begin(self, cycle: int, op: str, block: int,
                         requester: int, bus: int = 0) -> None:
        return None

    def record_invalidation(self, block: int, cache: int) -> None:
        return None

    def record_c2c(self, block: int, supplier: int) -> None:
        return None

    def record_source_loss(self, block: int) -> None:
        return None

    def record_unlock_broadcast(self, block: int, spurious: bool) -> None:
        return None

    def record_wait_start(self, pid: int, block: int, cycle: int) -> None:
        return None

    def record_wait_cancelled(self, pid: int, cycle: int) -> None:
        return None

    def record_lock_acquired(self, pid: int, block: int, cycle: int) -> None:
        return None

    def record_lock_released(self, pid: int, block: int,
                             since: int, cycle: int) -> None:
        return None

    def record_request_posted(self, cache: int, op_kind: str, block: int,
                              cycle: int) -> None:
        return None

    def record_request_aborted(self, cache: int, cycle: int) -> None:
        return None

    def record_local_hit(self, pid: int, cycle: int) -> None:
        return None

    def record_spin_step(self, pid: int, cycle: int) -> None:
        return None

    def record_wait_wakeup(self, cache: int, block: int, cycle: int) -> None:
        return None

    def record_wait_rearmed(self, cache: int, cycle: int) -> None:
        return None

    def record_crossbar(self, pid: int, start: int, until: int) -> None:
        return None

    def record_unlock_queued(self, cache: int, block: int,
                             cycle: int) -> None:
        return None

    def record_lock_spill(self, cache: int, block: int, cycle: int) -> None:
        return None

    def record_cluster_hop(self, cycle: int, block: int,
                           src_cluster: int, dst_cluster: int) -> None:
        return None

    def record_directory_msgs(self, cycle: int, kind: str, block: int,
                              bank: int, count: int = 1) -> None:
        return None


#: Module-level null object used whenever observability is disabled.
NULL_OBS = NullObservability()


class Observability:
    """Metric registry + interval sampler + timeline collection."""

    active = True

    def __init__(self, interval: int = 100, *, tracing: bool = False) -> None:
        self.registry = MetricRegistry()
        self.sampler = IntervalSampler(interval)
        #: The next ``stats.cycles`` value at which :meth:`on_advance`
        #: has sampling work to do.  The engine checks this plain
        #: attribute inline so the per-cycle cost of an attached
        #: observer is one comparison, not a call into the sampler.
        self.next_advance = self.sampler.next_boundary
        self.slices: list[dict] = []
        #: Causal span tracer (``tracing=True``); every hook below
        #: forwards to it, and it only ever sees event cycles, so its
        #: output is engine- and dispatch-independent.
        self.tracer = None
        if tracing:
            from repro.obs.tracing import SpanTracer

            self.tracer = SpanTracer(self.registry)
        self._stats: "SimStats | None" = None
        self._trace: "TraceLog | None" = None
        self._event_counts: TallyCounter = TallyCounter()
        #: Lock bookkeeping for handoffs, queue depth, and wait slices.
        self._last_owner: dict[int, int] = {}
        self._open_waits: dict[int, tuple[int, int]] = {}  # pid -> (block, start)

        reg = self.registry
        self._bus_txns = reg.counter(
            "bus_txns_total", "bus transactions granted",
            label_names=("op", "bus"))
        self._bus_txn_cycles = reg.histogram(
            "bus_txn_cycles", "bus occupancy per transaction (cycles)",
            label_names=("op",))
        self._invalidations = reg.counter(
            "invalidations_total", "invalidations received, by block",
            label_names=("block",))
        self._c2c = reg.counter(
            "c2c_transfers_total", "cache-to-cache supplies, by block",
            label_names=("block",))
        self._source_losses = reg.counter(
            "source_losses_total",
            "memory fetches despite cached copies (Feature 8 MEM), by block",
            label_names=("block",))
        self._unlock_broadcasts = reg.counter(
            "unlock_broadcasts_total", "unlock broadcasts, by block",
            label_names=("block", "spurious"))
        self._lock_acquisitions = reg.counter(
            "lock_acquisitions_total", "lock acquisitions, by block",
            label_names=("block",))
        self._lock_handoffs = reg.counter(
            "lock_handoffs_total",
            "acquisitions by a different processor than the previous owner",
            label_names=("block",))
        self._lock_hold = reg.histogram(
            "lock_hold_cycles", "lock hold time (cycles)",
            label_names=("block",))
        self._lock_wait = reg.histogram(
            "lock_wait_cycles", "lock wait/spin time (cycles)",
            label_names=("block",))
        self._cluster_hops = reg.counter(
            "cluster_hops_total",
            "inter-cluster link crossings, by (src, dst) cluster",
            label_names=("src", "dst"))
        self._directory_msgs = reg.counter(
            "directory_msgs_total",
            "directory point-to-point messages, by kind and home bank",
            label_names=("kind", "bank"))

    # -- wiring (called by the Simulator) ----------------------------------

    def bind(self, trace: "TraceLog", stats: "SimStats") -> None:
        """Attach to one run's trace log and statistics.

        The trace subscription is the sampler's event feed; rebinding to
        a different run is an error (construct a fresh Observability).
        """
        if self._trace is not None:
            if self._trace is trace and self._stats is stats:
                return
            raise RuntimeError(
                "Observability is already bound to a run; use one "
                "instance per simulation"
            )
        self._trace = trace
        self._stats = stats
        trace.subscribe(self._on_trace_event)
        self.sampler.attach(stats, self._gauges)

    def unbind(self) -> None:
        """Detach the trace listener (leaves collected data intact)."""
        if self._trace is not None:
            self._trace.unsubscribe(self._on_trace_event)
            self._trace = None

    def _on_trace_event(self, event: "TraceEvent") -> None:
        self._event_counts[event.kind.value] += 1

    def _gauges(self) -> dict:
        depth: dict[int, int] = {}
        for block, _start in self._open_waits.values():
            depth[block] = depth.get(block, 0) + 1
        return {
            "lock_waiters": len(self._open_waits),
            "lock_queue_depth": dict(sorted(depth.items())),
            "events": dict(self._event_counts),
        }

    # -- engine phase callback ---------------------------------------------

    def on_advance(self, cycles: int) -> None:
        self.sampler.on_advance(cycles)
        self.next_advance = self.sampler.next_boundary

    def on_run_end(self, cycles: int) -> None:
        self.sampler.finalize(cycles)
        if self.tracer is not None:
            self.tracer.finalize(cycles)

    # -- component publication hooks ---------------------------------------

    def record_bus_txn(self, cycle: int, duration: int, op: str,
                       block: int, requester: int, bus: int = 0,
                       *, outcome: str | None = None) -> None:
        self._bus_txns.inc(op=op, bus=bus)
        self._bus_txn_cycles.observe(duration, op=op)
        self.slices.append({
            "track": f"bus{bus}", "name": op, "start": cycle,
            "dur": duration,
            "args": {"block": block, "requester": requester},
        })
        if self.tracer is not None:
            self.tracer.txn_end(cycle, duration, op, block, requester,
                                bus=bus, outcome=outcome)

    def record_txn_begin(self, cycle: int, op: str, block: int,
                         requester: int, bus: int = 0) -> None:
        if self.tracer is not None:
            self.tracer.txn_begin(cycle, op, block, requester, bus=bus)

    def record_invalidation(self, block: int, cache: int) -> None:
        self._invalidations.inc(block=block)
        if self.tracer is not None:
            self.tracer.invalidation(block, cache)

    def record_c2c(self, block: int, supplier: int) -> None:
        self._c2c.inc(block=block)

    def record_source_loss(self, block: int) -> None:
        self._source_losses.inc(block=block)

    def record_unlock_broadcast(self, block: int, spurious: bool) -> None:
        self._unlock_broadcasts.inc(block=block, spurious=spurious)

    def record_cluster_hop(self, cycle: int, block: int,
                           src_cluster: int, dst_cluster: int) -> None:
        self._cluster_hops.inc(src=src_cluster, dst=dst_cluster)
        self.slices.append({
            "track": "link", "name": f"hop {src_cluster}->{dst_cluster}",
            "start": cycle, "dur": 1,
            "args": {"block": block, "src": src_cluster,
                     "dst": dst_cluster},
        })

    def record_directory_msgs(self, cycle: int, kind: str, block: int,
                              bank: int, count: int = 1) -> None:
        self._directory_msgs.inc(count, kind=kind, bank=bank)

    def record_wait_start(self, pid: int, block: int, cycle: int) -> None:
        # Re-arms (lost post-unlock arbitration) keep the original start.
        if pid not in self._open_waits:
            self._open_waits[pid] = (block, cycle)
        if self.tracer is not None:
            self.tracer.wait_start(pid, block, cycle)

    def record_wait_cancelled(self, pid: int, cycle: int) -> None:
        open_wait = self._open_waits.pop(pid, None)
        if open_wait is not None:
            block, start = open_wait
            self._close_wait(pid, block, start, cycle, cancelled=True)
        if self.tracer is not None:
            self.tracer.wait_cancelled(pid, cycle)

    def record_lock_acquired(self, pid: int, block: int, cycle: int) -> None:
        self._lock_acquisitions.inc(block=block)
        previous = self._last_owner.get(block)
        if previous is not None and previous != pid:
            self._lock_handoffs.inc(block=block)
        self._last_owner[block] = pid
        open_wait = self._open_waits.pop(pid, None)
        if open_wait is not None:
            wait_block, start = open_wait
            self._close_wait(pid, wait_block, start, cycle, cancelled=False)
        if self.tracer is not None:
            self.tracer.lock_acquired(pid, block, cycle)

    def _close_wait(self, pid: int, block: int, start: int, cycle: int,
                    cancelled: bool) -> None:
        self._lock_wait.observe(cycle - start, block=block)
        self.slices.append({
            "track": f"cpu{pid}",
            "name": f"wait {block}" + (" (cancelled)" if cancelled else ""),
            "start": start, "dur": cycle - start,
            "args": {"block": block},
        })

    def record_lock_released(self, pid: int, block: int,
                             since: int, cycle: int) -> None:
        self._lock_hold.observe(cycle - since, block=block)
        self.slices.append({
            "track": f"cpu{pid}", "name": f"hold {block}",
            "start": since, "dur": cycle - since,
            "args": {"block": block},
        })
        if self.tracer is not None:
            self.tracer.lock_released(pid, block, since, cycle)

    # -- tracing-only hooks (no registry work; forwarded verbatim) ---------

    def record_request_posted(self, cache: int, op_kind: str, block: int,
                              cycle: int) -> None:
        if self.tracer is not None:
            self.tracer.request_posted(cache, op_kind, block, cycle)

    def record_request_aborted(self, cache: int, cycle: int) -> None:
        if self.tracer is not None:
            self.tracer.request_aborted(cache, cycle)

    def record_local_hit(self, pid: int, cycle: int) -> None:
        if self.tracer is not None:
            self.tracer.local_hit(pid, cycle)

    def record_spin_step(self, pid: int, cycle: int) -> None:
        if self.tracer is not None:
            self.tracer.spin_step(pid, cycle)

    def record_wait_wakeup(self, cache: int, block: int, cycle: int) -> None:
        if self.tracer is not None:
            self.tracer.wait_wakeup(cache, block, cycle)

    def record_wait_rearmed(self, cache: int, cycle: int) -> None:
        if self.tracer is not None:
            self.tracer.wait_rearmed(cache, cycle)

    def record_crossbar(self, pid: int, start: int, until: int) -> None:
        if self.tracer is not None:
            self.tracer.crossbar(pid, start, until)

    def record_unlock_queued(self, cache: int, block: int,
                             cycle: int) -> None:
        if self.tracer is not None:
            self.tracer.unlock_queued(cache, block, cycle)

    def record_lock_spill(self, cache: int, block: int, cycle: int) -> None:
        if self.tracer is not None:
            self.tracer.lock_spill(cache, block, cycle)

    # -- results -----------------------------------------------------------

    def result(self) -> ObsResult:
        """Reduce the run to plain data (safe to pickle across the
        process-pool sweep path)."""
        cycles = self._stats.cycles if self._stats is not None else 0
        spans: list[dict] = []
        attribution = None
        if self.tracer is not None:
            spans = list(self.tracer.spans)
            # Attribution needs the finalized tallies (open episodes are
            # closed by on_run_end); a mid-run reduction keeps the spans
            # but skips the exact accounting.
            if self._stats is not None and self.tracer.end_cycle is not None:
                from repro.obs.attribution import compute_attribution

                attribution = compute_attribution(
                    self.tracer, self._stats).to_dict()
        return ObsResult(
            interval=self.sampler.interval,
            cycles=cycles,
            samples=list(self.sampler.samples),
            metrics=self.registry.snapshot(),
            slices=list(self.slices),
            spans=spans,
            attribution=attribution,
        )


def _as_result(obs: "Observability | ObsResult") -> ObsResult:
    """Accept either a live layer or an already-reduced result."""
    if isinstance(obs, ObsResult):
        return obs
    return obs.result()
