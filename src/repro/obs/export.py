"""Exporters: JSON-lines, CSV, and Chrome trace-event format.

The sample series and metric snapshots leave the process as JSON-lines
(one sample per line) or CSV; the timeline slices leave as Chrome
trace-event JSON loadable in Perfetto (``ui.perfetto.dev``) or
``chrome://tracing`` -- one track per processor, one per bus, with lock
hold/wait slices on the processor tracks and bus occupancy slices on the
bus tracks.

:func:`validate_chrome_trace` checks an exported payload against the
subset of the trace-event schema this module emits (and Perfetto
requires); the CI smoke job runs it over the artifacts it uploads.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Any

from repro.common.schema import stamp

if TYPE_CHECKING:
    from repro.obs.core import Observability, ObsResult

#: Sample fields whose values are nested mappings; CSV encodes them as
#: JSON cells, JSONL keeps them structured.
_NESTED_SAMPLE_FIELDS = ("txn_mix", "lock_queue_depth", "events")


def _result(obs: "Observability | ObsResult") -> "ObsResult":
    from repro.obs.core import _as_result

    return _as_result(obs)


# -- JSON lines / CSV -------------------------------------------------------


def samples_jsonl(obs: "Observability | ObsResult") -> str:
    """One sample per line; a leading header line carries run metadata."""
    result = _result(obs)
    lines = [json.dumps(stamp({"kind": "header", "interval": result.interval,
                               "cycles": result.cycles}))]
    lines.extend(
        json.dumps({"kind": "sample", **sample}) for sample in result.samples
    )
    return "\n".join(lines) + "\n"


def samples_csv(obs: "Observability | ObsResult") -> str:
    """The sample series as CSV; nested mappings become JSON cells."""
    result = _result(obs)
    buffer = io.StringIO()
    if not result.samples:
        return ""
    fields = list(result.samples[0])
    writer = csv.DictWriter(buffer, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    for sample in result.samples:
        row = dict(sample)
        for key in _NESTED_SAMPLE_FIELDS:
            if key in row:
                row[key] = json.dumps(row[key], sort_keys=True)
        writer.writerow(row)
    return buffer.getvalue()


def metrics_json(obs: "Observability | ObsResult", *,
                 indent: int | None = 2) -> str:
    """The full registry snapshot plus the sample series as one JSON doc."""
    return json.dumps(stamp(_result(obs).to_dict()), indent=indent)


def spans_json(obs: "Observability | ObsResult", *,
               indent: int | None = 1) -> str:
    """The causal span trace as one stamped JSON document.

    A single document (kind ``span-trace``) rather than JSON-lines so
    ``scripts/validate_trace.py`` can ``json.load`` it like the other
    schema-stamped artifacts.
    """
    result = _result(obs)
    payload = stamp({"kind": "span-trace", "cycles": result.cycles,
                     "spans": result.spans})
    return json.dumps(payload, indent=indent) + "\n"


def write_spans(obs: "Observability | ObsResult", path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_json(obs))


def folded_stacks(report: Any) -> str:
    """An attribution report as folded stacks (flamegraph collapse format).

    One line per processor x bucket -- ``cpu0;miss_wait 1234`` -- with
    every bucket emitted (zeros included) so per-cpu line sums equal the
    run's total cycles.  Feed to ``flamegraph.pl`` or speedscope.
    """
    from repro.obs.attribution import BUCKETS

    per_pid = getattr(report, "per_pid", None)
    if per_pid is None:
        per_pid = report["per_pid"]
    lines = []
    for entry in sorted(per_pid, key=lambda e: e["pid"]):
        for bucket in BUCKETS:
            lines.append(
                f"cpu{entry['pid']};{bucket} {entry['buckets'][bucket]}")
    return "\n".join(lines) + "\n"


def write_samples(obs: "Observability | ObsResult", path: str) -> None:
    """Write the sample series; format chosen by extension (``.csv`` is
    CSV, ``.json`` the full metrics document, anything else JSON-lines)."""
    if path.endswith(".csv"):
        payload = samples_csv(obs)
    elif path.endswith(".json"):
        payload = metrics_json(obs)
    else:
        payload = samples_jsonl(obs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


# -- Chrome trace-event format ----------------------------------------------

#: The single simulated machine is one "process" in the trace.
_TRACE_PID = 0


def _track_order(track: str) -> tuple:
    """Buses first, then processors, each numerically ordered."""
    for prefix, rank in (("bus", 0), ("cpu", 1)):
        if track.startswith(prefix) and track[len(prefix):].isdigit():
            return (rank, int(track[len(prefix):]))
    return (2, track)


def chrome_trace(obs: "Observability | ObsResult") -> dict:
    """The run's timeline as a Chrome trace-event JSON object.

    Cycles are mapped 1:1 to microseconds (the trace-event timestamp
    unit), so Perfetto's time axis reads directly in bus cycles.
    """
    result = _result(obs)
    spans = result.spans
    tracks = sorted({s["track"] for s in result.slices}
                    | {s["track"] for s in spans}, key=_track_order)
    tids = {track: index for index, track in enumerate(tracks)}
    events: list[dict] = [{
        "ph": "M", "pid": _TRACE_PID, "tid": 0, "name": "process_name",
        "args": {"name": "repro simulation"},
    }]
    for track, tid in tids.items():
        events.append({
            "ph": "M", "pid": _TRACE_PID, "tid": tid, "name": "thread_name",
            "args": {"name": track},
        })
        # thread_sort_index keeps bus tracks above the processor tracks.
        events.append({
            "ph": "M", "pid": _TRACE_PID, "tid": tid,
            "name": "thread_sort_index", "args": {"sort_index": tid},
        })
    for s in result.slices:
        events.append({
            "ph": "X", "pid": _TRACE_PID, "tid": tids[s["track"]],
            "name": s["name"], "cat": s["track"],
            "ts": s["start"], "dur": max(s["dur"], 0),
            "args": s.get("args", {}),
        })
    by_id = {span["id"]: span for span in spans}
    for span in spans:
        args = dict(span.get("args") or {})
        args["span_id"] = span["id"]
        events.append({
            "ph": "X", "pid": _TRACE_PID, "tid": tids[span["track"]],
            "name": span["name"], "cat": f"span.{span['kind']}",
            "ts": span["start"], "dur": max(span["dur"], 0),
            "args": args,
        })
        # Parent/cause links become flow arrows; span links always point
        # at earlier span ids, so the flow start never postdates its end.
        for edge, offset in (("parent", 0), ("cause", 1)):
            source = by_id.get(span.get(edge))
            if source is None:
                continue
            flow_id = span["id"] * 2 + offset
            events.append({
                "ph": "s", "pid": _TRACE_PID, "tid": tids[source["track"]],
                "name": edge, "cat": "flow", "id": flow_id,
                "ts": source["start"],
            })
            events.append({
                "ph": "f", "pid": _TRACE_PID, "tid": tids[span["track"]],
                "name": edge, "cat": "flow", "id": flow_id,
                "ts": span["start"], "bp": "e",
            })
    return stamp({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"cycles": result.cycles,
                      "sample_interval": result.interval},
    })


def write_chrome_trace(obs: "Observability | ObsResult", path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(obs), handle, indent=1)
        handle.write("\n")


def validate_chrome_trace(payload: Any) -> list[str]:
    """Check a payload against the emitted trace-event schema subset.

    Returns a list of problems (empty when valid).  Checked: the
    top-level object shape, per-event required keys and types for the
    phases this exporter emits, and non-negative timestamps/durations.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "C", "s", "t", "f"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key, types in (("name", str), ("pid", int), ("tid", int)):
            if not isinstance(event.get(key), types):
                problems.append(f"{where}: missing/invalid {key!r}")
        if ph in ("s", "t", "f"):
            if not isinstance(event.get("id"), int):
                problems.append(f"{where}: flow event without an 'id'")
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(
                    f"{where}: 'ts' must be a non-negative number")
        elif ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: {key!r} must be a non-negative number")
        elif ph == "M":
            if not isinstance(event.get("args"), dict):
                problems.append(f"{where}: metadata event without args")
    return problems


def assert_valid_chrome_trace(payload: Any) -> None:
    """Raise ``ValueError`` listing the first few schema violations."""
    problems = validate_chrome_trace(payload)
    if problems:
        shown = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise ValueError(f"invalid Chrome trace: {shown}{more}")
