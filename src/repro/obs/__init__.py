"""Time-resolved observability: registry, sampler, heatmaps, exporters.

Quickstart::

    from repro import SystemConfig, Simulator
    from repro.obs import Observability, build_heatmap, write_chrome_trace
    from repro.workloads import lock_contention

    config = SystemConfig(num_processors=4, protocol="bitar-despain")
    obs = Observability(interval=100)
    sim = Simulator(config, lock_contention(config), obs=obs)
    sim.run()
    print(build_heatmap(obs).render())
    write_chrome_trace(obs, "trace.json")   # load in ui.perfetto.dev
"""

from repro.obs.attribution import (
    BUCKETS,
    AttributionError,
    AttributionReport,
    compare_attributions,
    compute_attribution,
    critical_path,
    render_comparison,
    render_critical_path,
)
from repro.obs.core import NULL_OBS, NullObservability, Observability, ObsResult
from repro.obs.export import (
    assert_valid_chrome_trace,
    chrome_trace,
    folded_stacks,
    metrics_json,
    samples_csv,
    samples_jsonl,
    spans_json,
    validate_chrome_trace,
    write_chrome_trace,
    write_samples,
    write_spans,
)
from repro.obs.tracing import DETACHED_OPS, SPAN_KINDS, SpanTracer
from repro.obs.heatmap import HEATMAP_METRICS, Heatmap, build_heatmap
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.obs.sampler import IntervalSampler

__all__ = [
    "AttributionError",
    "AttributionReport",
    "BUCKETS",
    "Counter",
    "DETACHED_OPS",
    "Gauge",
    "HEATMAP_METRICS",
    "Heatmap",
    "Histogram",
    "IntervalSampler",
    "MetricRegistry",
    "NULL_OBS",
    "NullObservability",
    "ObsResult",
    "Observability",
    "SPAN_KINDS",
    "SpanTracer",
    "assert_valid_chrome_trace",
    "build_heatmap",
    "chrome_trace",
    "compare_attributions",
    "compute_attribution",
    "critical_path",
    "folded_stacks",
    "metrics_json",
    "render_comparison",
    "render_critical_path",
    "samples_csv",
    "samples_jsonl",
    "spans_json",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_samples",
    "write_spans",
]
