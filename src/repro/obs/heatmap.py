"""Per-address attribution: heatmaps over blocks.

Reduces the labeled counters of an observed run into per-block heat
tables so hot atoms and false sharing are visible: invalidations,
cache-to-cache transfers, source losses, and lock handoffs per block.
The paper's contention arguments (Sections D-F) are all claims about
*which block* the traffic concentrates on; this is the pass that answers
that question for a simulated run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.core import Observability, ObsResult

#: registry metric name -> short column title, in display order.
HEATMAP_METRICS = (
    ("invalidations_total", "invalidations"),
    ("c2c_transfers_total", "c2c transfers"),
    ("source_losses_total", "source losses"),
    ("lock_handoffs_total", "lock handoffs"),
    ("lock_acquisitions_total", "lock acquisitions"),
    ("unlock_broadcasts_total", "unlock broadcasts"),
)


@dataclass
class Heatmap:
    """Per-block counts for each attribution metric."""

    per_metric: dict[str, dict[int, float]] = field(default_factory=dict)

    def blocks(self) -> list[int]:
        seen: set[int] = set()
        for counts in self.per_metric.values():
            seen.update(counts)
        return sorted(seen)

    def top(self, metric: str, n: int = 10) -> list[tuple[int, float]]:
        """The ``n`` hottest blocks for one metric, hottest first (ties
        broken by block address for determinism)."""
        counts = self.per_metric.get(metric, {})
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def hottest_block(self, metric: str) -> int | None:
        top = self.top(metric, 1)
        return top[0][0] if top else None

    def to_dict(self) -> dict:
        from repro.common.schema import stamp

        return stamp({
            metric: {str(block): count for block, count in sorted(counts.items())}
            for metric, counts in self.per_metric.items()
        })

    def render(self, n: int = 10) -> str:
        """A per-block table of every attribution metric, hottest blocks
        (by total heat) first."""
        from repro.analysis.report import render_table

        titles = [title for _name, title in HEATMAP_METRICS]
        names = [name for name, _title in HEATMAP_METRICS]
        heat = {
            block: sum(self.per_metric.get(name, {}).get(block, 0)
                       for name in names)
            for block in self.blocks()
        }
        ranked = sorted(heat.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        rows = [
            [block] + [int(self.per_metric.get(name, {}).get(block, 0))
                       for name in names]
            for block, _total in ranked
        ]
        return render_table(["block"] + titles, rows,
                            title=f"per-block heatmap (top {len(rows)})")


def build_heatmap(obs: "Observability | ObsResult") -> Heatmap:
    """Aggregate an observed run's labeled counters per block."""
    from repro.obs.core import _as_result

    metrics = _as_result(obs).metrics
    per_metric: dict[str, dict[int, float]] = {}
    for name, _title in HEATMAP_METRICS:
        counts: dict[int, float] = {}
        for entry in metrics.get(name, {}).get("values", []):
            block = entry["labels"]["block"]
            counts[block] = counts.get(block, 0) + entry["value"]
        per_metric[name] = counts
    return Heatmap(per_metric=per_metric)
