"""Legacy entry point: this environment has no `wheel`, so editable
installs go through `pip install -e . --no-use-pep517`."""

from setuptools import setup

setup()
